package lumscan

import (
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/worldgen"
)

var (
	testWorld = worldgen.Generate(worldgen.TestConfig())
	testNet   = proxy.NewNetwork(testWorld)
)

func smallScanInputs(t *testing.T) ([]string, []geo.CountryCode) {
	t.Helper()
	var domains []string
	for _, d := range testWorld.Top10K()[:40] {
		domains = append(domains, d.Name)
	}
	return domains, []geo.CountryCode{"US", "DE", "IR", "SY", "BR"}
}

func TestScanProducesAllSamples(t *testing.T) {
	domains, countries := smallScanInputs(t)
	cfg := DefaultConfig()
	cfg.Concurrency = 4
	res := Scan(testNet, domains, countries, CrossProduct(len(domains), len(countries)), cfg)
	want := len(domains) * len(countries) * cfg.Samples
	if len(res.Samples) != want {
		t.Fatalf("samples = %d, want %d", len(res.Samples), want)
	}
	okCount := 0
	for _, s := range res.Samples {
		if int(s.Domain) >= len(domains) || int(s.Country) >= len(countries) {
			t.Fatalf("sample indexes out of range: %+v", s)
		}
		if s.OK() {
			okCount++
			if s.Status == 0 {
				t.Fatalf("ok sample with zero status: %+v", s)
			}
		}
	}
	// The vast majority of requests should succeed (paper: 90% of
	// domains saw <11.7% error rates).
	if frac := float64(okCount) / float64(len(res.Samples)); frac < 0.80 {
		t.Fatalf("success fraction %.2f too low", frac)
	}
}

func TestScanDeterministic(t *testing.T) {
	domains, countries := smallScanInputs(t)
	cfg := DefaultConfig()
	a := Scan(testNet, domains, countries, CrossProduct(len(domains), len(countries)), cfg)
	b := Scan(testNet, domains, countries, CrossProduct(len(domains), len(countries)), cfg)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Samples {
		sa, sb := a.Samples[i], b.Samples[i]
		if sa != sb {
			t.Fatalf("sample %d differs:\n%+v\n%+v", i, sa, sb)
		}
	}
}

func TestPhaseChangesSamples(t *testing.T) {
	domains, countries := smallScanInputs(t)
	cfg := DefaultConfig()
	cfg.Samples = 1
	a := Scan(testNet, domains, countries, CrossProduct(len(domains), len(countries)), cfg)
	cfg.Phase = "resample"
	b := Scan(testNet, domains, countries, CrossProduct(len(domains), len(countries)), cfg)
	diff := 0
	for i := range a.Samples {
		if a.Samples[i].Seed != b.Samples[i].Seed {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("phase salt must change seeds")
	}
}

func TestBlockPageBodiesKept(t *testing.T) {
	// Scan a GAE-hosted domain from Iran: the AppEngine block page must
	// come back with its body retained.
	var gae *worldgen.Domain
	for _, d := range testWorld.Top10K() {
		if d.GAEHosted && len(d.Providers) == 1 && d.Providers[0] == worldgen.AppEngine && !d.Unreachable {
			gae = d
			break
		}
	}
	if gae == nil {
		t.Skip("no GAE domain at this scale")
	}
	res := Scan(testNet, []string{gae.Name}, []geo.CountryCode{"IR"},
		CrossProduct(1, 1), DefaultConfig())
	found := false
	for _, s := range res.Samples {
		if s.OK() && s.Status == 403 {
			if s.Body == "" {
				t.Fatal("403 sample lost its body")
			}
			if !blockpage.Matches(blockpage.AppEngine, s.Body) {
				t.Fatal("403 body is not the AppEngine page")
			}
			if int(s.BodyLen) != len(s.Body) {
				t.Fatal("BodyLen mismatch")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no block page observed in 3 samples from Iran")
	}
}

func TestSuccessBodiesDropped(t *testing.T) {
	domains, countries := smallScanInputs(t)
	res := Scan(testNet, domains, countries[:1], CrossProduct(len(domains), 1), DefaultConfig())
	for _, s := range res.Samples {
		if s.Status == 200 && s.Body != "" {
			t.Fatal("200 bodies must not be retained by default")
		}
		if s.Status == 200 && s.BodyLen <= 0 {
			t.Fatal("200 samples must still record their length")
		}
	}
}

func TestReplayReproducesBody(t *testing.T) {
	var gae *worldgen.Domain
	for _, d := range testWorld.Top10K() {
		if d.GAEHosted && len(d.Providers) == 1 && d.Providers[0] == worldgen.AppEngine && !d.Unreachable {
			gae = d
			break
		}
	}
	if gae == nil {
		t.Skip("no GAE domain at this scale")
	}
	res := Scan(testNet, []string{gae.Name}, []geo.CountryCode{"SY"}, CrossProduct(1, 1), DefaultConfig())
	for _, s := range res.Samples {
		if !s.OK() || s.Body == "" {
			continue
		}
		body, status, err := Replay(testWorld, gae.Name, s.ExitIP, s.Seed, BrowserHeaders(), 10)
		if err != nil {
			t.Fatal(err)
		}
		if int16(status) != s.Status || body != s.Body {
			t.Fatal("replay did not reproduce the sample")
		}
		return
	}
	t.Skip("no retained body to replay")
}

func TestNoExitsCountry(t *testing.T) {
	res := Scan(testNet, []string{testWorld.Top10K()[0].Name}, []geo.CountryCode{"KP"},
		CrossProduct(1, 1), DefaultConfig())
	if len(res.Samples) != 3 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Err != ErrNoExits {
			t.Fatalf("North Korea sample err = %v", s.Err)
		}
	}
}

func TestLuminatiRestricted(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.LuminatiRestricted {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no restricted domain at this scale")
	}
	res := Scan(testNet, []string{d.Name}, []geo.CountryCode{"US"}, CrossProduct(1, 1), DefaultConfig())
	for _, s := range res.Samples {
		if s.Err != ErrLuminati {
			t.Fatalf("restricted domain err = %v", s.Err)
		}
	}
}

func TestUnreachableTimesOutAfterRetries(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.Unreachable {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no unreachable domain")
	}
	res := Scan(testNet, []string{d.Name}, []geo.CountryCode{"US"}, CrossProduct(1, 1), DefaultConfig())
	for _, s := range res.Samples {
		if s.Err != ErrTimeout {
			t.Fatalf("unreachable domain err = %v", s.Err)
		}
	}
}

func TestScanVPS(t *testing.T) {
	fleet := proxy.VPSFleet(testWorld, []geo.CountryCode{"IR", "US"})
	var domains []string
	for _, d := range testWorld.Top10K()[:30] {
		if !d.Unreachable && !d.RedirectLoop {
			domains = append(domains, d.Name)
		}
	}
	cfg := Config{Samples: 1, Headers: ZGrabHeaders(), Phase: "explore"}
	res := ScanVPS(fleet, domains, cfg)
	if len(res.Samples) != len(domains)*2 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Err == ErrProxy {
			t.Fatal("VPS scans have no proxy failures")
		}
	}
}

func TestCrawlerHeadersTriggerBotDefense(t *testing.T) {
	// Bot-sensitive deployments are rare at default calibration; build
	// a small world where they are common.
	cfg := worldgen.TestConfig()
	cfg.Scale = 0.05
	cfg.AkamaiBotSensitivityRate = 0.6
	botWorld := worldgen.Generate(cfg)
	var d *worldgen.Domain
	for _, cand := range botWorld.Top10K() {
		if cand.FrontedBy(worldgen.Akamai) && cand.BotSensitivity > 0.8 &&
			len(cand.GeoRules) == 0 && !cand.AirbnbStyle && !cand.Unreachable && len(cand.CensoredIn) == 0 {
			d = cand
			break
		}
	}
	if d == nil {
		t.Fatal("no bot-sensitive Akamai domain even at elevated rate")
	}
	fleet := proxy.VPSFleet(botWorld, []geo.CountryCode{"US"})

	crawler := ScanVPS(fleet, []string{d.Name}, Config{Samples: 3, Headers: ZGrabHeaders(), Phase: "a"})
	got403 := false
	for _, s := range crawler.Samples {
		if s.Status == 403 {
			got403 = true
		}
	}
	if !got403 {
		t.Fatal("crawler fingerprint should trip bot defense")
	}

	browser := ScanVPS(fleet, []string{d.Name}, Config{Samples: 3, Headers: BrowserHeaders(), Phase: "a"})
	got200 := false
	for _, s := range browser.Samples {
		if s.Status == 200 {
			got200 = true
		}
	}
	if !got200 {
		t.Fatal("browser fingerprint should pass bot defense")
	}
}

func TestErrCodeStrings(t *testing.T) {
	codes := []ErrCode{ErrNone, ErrProxy, ErrTimeout, ErrDNS, ErrReset, ErrRedirects, ErrLuminati, ErrNoExits}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("bad string for %d: %q", c, s)
		}
		seen[s] = true
	}
}

func TestLoadBalancingBoundsExitUse(t *testing.T) {
	// §3.2: "We only perform 10 requests with a given exit machine
	// before changing exit machine." Retries and redirect hops add a
	// bounded overshoot on top of the per-sample budget check.
	domains, countries := smallScanInputs(t)
	cfg := DefaultConfig()
	res := Scan(testNet, domains, countries, CrossProduct(len(domains), len(countries)), cfg)
	load := res.LoadReport()
	if load.MaxStretch == 0 {
		t.Fatal("no load recorded")
	}
	// A sample consumes up to 1+Retries requests plus redirect hops,
	// so a stretch of samples can exceed 10 slightly — but not by much.
	if load.MaxStretch > cfg.RequestsPerExit+6 {
		t.Fatalf("an exit served %d consecutive samples; the budget is %d",
			load.MaxStretch, cfg.RequestsPerExit)
	}
	if len(load.PerExit) < len(countries) {
		t.Fatalf("only %d exits used for %d countries", len(load.PerExit), len(countries))
	}
}
