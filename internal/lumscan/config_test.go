package lumscan

import (
	"errors"
	"testing"

	"geoblock/internal/vnet"
)

func TestCrossProductShape(t *testing.T) {
	tasks := CrossProduct(3, 2)
	if len(tasks) != 6 {
		t.Fatalf("len = %d", len(tasks))
	}
	// Grouped by country so one worker keeps one session.
	if tasks[0].Country != 0 || tasks[3].Country != 1 {
		t.Fatalf("ordering wrong: %+v", tasks)
	}
	if CrossProduct(0, 5) == nil {
		// Empty is fine, but must not panic.
		t.Log("empty cross product")
	}
}

func TestDefaultConfigValues(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Samples != 3 || cfg.Phase != "initial" {
		t.Fatalf("default samples = %d phase = %q", cfg.Samples, cfg.Phase)
	}
	if cfg.RequestsPerExit != 10 || cfg.MaxRedirects != 10 {
		t.Fatal("paper parameters wrong")
	}
	if cfg.Headers["Accept-Language"] == "" {
		t.Fatal("browser header set incomplete")
	}
}

func TestZGrabHeadersAreCrawlerLike(t *testing.T) {
	h := ZGrabHeaders()
	if h["Accept"] != "" || h["Accept-Language"] != "" {
		t.Fatal("ZGrab set must be bare")
	}
	if h["User-Agent"] == "" {
		t.Fatal("ZGrab still sets a UA (§3.1)")
	}
}

func TestClassifyError(t *testing.T) {
	cases := []struct {
		err  error
		want ErrCode
	}{
		{&vnet.OpError{Op: "dns", Msg: "no such host"}, ErrDNS},
		{&vnet.OpError{Op: "proxy", Msg: "exit failed"}, ErrProxy},
		{&vnet.OpError{Op: "read", Msg: "reset"}, ErrReset},
		{errRedirectLimit, ErrRedirects},
		{errors.New("mystery"), ErrProxy},
	}
	for _, tc := range cases {
		if got := classifyError(tc.err); got != tc.want {
			t.Errorf("classifyError(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSampleSeedDistinct(t *testing.T) {
	a := sampleSeed("a.com", "IR", "initial", 0)
	b := sampleSeed("a.com", "IR", "initial", 1)
	c := sampleSeed("a.com", "SY", "initial", 0)
	d := sampleSeed("b.com", "IR", "initial", 0)
	e := sampleSeed("a.com", "IR", "resample", 0)
	seen := map[uint64]bool{}
	for _, s := range []uint64{a, b, c, d, e} {
		if seen[s] {
			t.Fatal("seed collision across sampling dimensions")
		}
		seen[s] = true
	}
}

func TestSampleOKSemantics(t *testing.T) {
	s := Sample{Err: ErrNone, Status: 200}
	if !s.OK() {
		t.Fatal("ok sample misreported")
	}
	s.Err = ErrTimeout
	if s.OK() {
		t.Fatal("failed sample misreported")
	}
}
