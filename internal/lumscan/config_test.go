package lumscan

import (
	"testing"
)

func TestCrossProductShape(t *testing.T) {
	tasks := CrossProduct(3, 2)
	if len(tasks) != 6 {
		t.Fatalf("len = %d", len(tasks))
	}
	// Grouped by country so one worker keeps one session.
	if tasks[0].Country != 0 || tasks[3].Country != 1 {
		t.Fatalf("ordering wrong: %+v", tasks)
	}
	if CrossProduct(0, 5) == nil {
		// Empty is fine, but must not panic.
		t.Log("empty cross product")
	}
}

func TestDefaultConfigValues(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Samples != 3 || cfg.Phase != "initial" {
		t.Fatalf("default samples = %d phase = %q", cfg.Samples, cfg.Phase)
	}
	if cfg.RequestsPerExit != 10 || cfg.MaxRedirects != 10 {
		t.Fatal("paper parameters wrong")
	}
	if cfg.Headers["Accept-Language"] == "" {
		t.Fatal("browser header set incomplete")
	}
}

func TestZGrabHeadersAreCrawlerLike(t *testing.T) {
	h := ZGrabHeaders()
	if h["Accept"] != "" || h["Accept-Language"] != "" {
		t.Fatal("ZGrab set must be bare")
	}
	if h["User-Agent"] == "" {
		t.Fatal("ZGrab still sets a UA (§3.1)")
	}
}

func TestSampleOKSemantics(t *testing.T) {
	s := Sample{Err: ErrNone, Status: 200}
	if !s.OK() {
		t.Fatal("ok sample misreported")
	}
	s.Err = ErrTimeout
	if s.OK() {
		t.Fatal("failed sample misreported")
	}
}
