package runstore

import (
	"reflect"
	"testing"
)

// FuzzDecodeRecord hammers the strict decoder with arbitrary payloads:
// it must never panic, and any payload it accepts must re-encode into
// a payload that decodes to the same record (the codec is closed under
// roundtripping, even when the input used a non-minimal varint form).
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(encodeRecord(rec))
	}
	// Torn and corrupt shapes recovery actually encounters.
	f.Add([]byte{})
	f.Add([]byte{recSample})
	f.Add([]byte{recPhaseBegin, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	half := encodeRecord(sampleRecords()[1])
	f.Add(half[:len(half)/2])
	flipped := append([]byte(nil), half...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		re := encodeRecord(rec)
		rec2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted payload does not decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("roundtrip not closed:\nfirst  %+v\nsecond %+v", rec, rec2)
		}
	})
}
