// The resume orchestration: Store.Scan wraps one engine invocation in
// journaling, replay, and checkpoint-driven skipping.
//
// Division of labor with the engine: the store replays a phase's
// persisted samples into the caller's sink and restores the journaled
// per-shard metric snapshots BEFORE the engine runs, then hands the
// engine a scanner.Resume marking those shards done. The engine
// credits the skipped shards' spans, counters, and outage accounting
// itself (see scanner.Config.Resume), so a resumed run's deterministic
// telemetry, paper tables, and sample stream are byte-identical to an
// uninterrupted run's. For a phase the journal already saw complete,
// the store still calls Run — with every shard skipped and the inner,
// non-journaling sink — so the engine recomputes the accounting with
// zero fetching instead of the store duplicating that logic.
package runstore

import (
	"encoding/json"
	"fmt"

	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
)

// Scan describes one journaled engine invocation.
type Scan struct {
	// Key names the phase in the journal. It must be unique per scan
	// invocation across the whole study (the pipeline suffixes repeat
	// invocations), and stable across runs so a resumed study finds its
	// own work.
	Key string
	// Fingerprint digests the scan's identity — world seed, inputs,
	// sampling parameters (never Concurrency). A journal whose
	// fingerprint for Key disagrees belongs to a different study and
	// resuming from it errors rather than splices mismatched data.
	Fingerprint uint64
	// Cfg is the engine configuration. The store sets Cfg.Resume.
	Cfg scanner.Config
	// Sink receives the phase's samples — replayed and live alike, in
	// canonical order.
	Sink scanner.Sink
	// Run invokes the engine with the (possibly adjusted) config and
	// the store's journaling sink. It exists so one Scan type serves
	// both the residential (scanner.Run) and VPS (scanner.RunVPS)
	// engines.
	Run func(cfg scanner.Config, sink scanner.Sink) error
}

// Scan runs one journaled phase: a fresh phase is announced and
// journaled as it streams; a partially journaled phase replays its
// committed shards into sc.Sink and resumes the engine past them; a
// complete phase replays everything and re-runs only the engine's
// accounting. The caller's sink sees the identical sample, outage,
// and coverage sequence in every case.
func (s *Store) Scan(sc Scan) error {
	s.mu.Lock()
	ph := s.phases[sc.Key]
	s.mu.Unlock()

	cfg := sc.Cfg
	if ph == nil {
		var err error
		ph, err = s.beginPhase(sc.Key, cfg.Phase, sc.Fingerprint)
		if err != nil {
			return err
		}
		return s.runJournaled(sc, cfg, ph)
	}

	if ph.fingerprint != sc.Fingerprint {
		return fmt.Errorf("runstore: phase %q fingerprint %x does not match journal's %x — the journal belongs to a different study",
			sc.Key, sc.Fingerprint, ph.fingerprint)
	}
	lost, err := s.replayPhase(ph, sc.Sink, cfg.Metrics)
	if err != nil {
		return err
	}
	cfg.Resume = &scanner.Resume{Shards: len(lost), Lost: lost}
	if ph.done {
		// Nothing left to fetch: run the engine with every shard
		// skipped and the inner sink, purely to recompute spans,
		// counters, and the outage/coverage records.
		return sc.Run(cfg, sc.Sink)
	}
	return s.runJournaled(sc, cfg, ph)
}

// runJournaled drives the engine through the journaling sink and
// closes the phase on success.
func (s *Store) runJournaled(sc Scan, cfg scanner.Config, ph *phaseState) error {
	js := &journalSink{store: s, phase: ph, next: sc.Sink}
	if err := sc.Run(cfg, js); err != nil {
		return err
	}
	if js.err != nil {
		return js.err
	}
	return s.completePhase(ph)
}

// replayPhase streams ph's committed samples from disk into sink in
// journal order — which is canonical order, because the emitter
// journals shards at their canonical emission point — crediting the
// sink-layer counters and merging each checkpoint's staged metric
// snapshot, then returns the per-shard loss reasons for the engine's
// Resume. The store stays open for appends throughout; replay reads
// independent handles.
func (s *Store) replayPhase(ph *phaseState, sink scanner.Sink, reg *telemetry.Registry) ([]scanner.OutageReason, error) {
	s.mu.Lock()
	segs := append([]string(nil), s.segments...)
	checkpoints := append([]Checkpoint(nil), ph.checkpoints...)
	s.mu.Unlock()

	want := 0
	lost := make([]scanner.OutageReason, len(checkpoints))
	for i, cp := range checkpoints {
		want += cp.Samples
		lost[i] = cp.Lost
	}

	var replayed int
	var bodyBytes int64
	for _, name := range segs {
		_, err := s.scanSegment(name, func(rec Record, _ int64) error {
			if rec.Type != recSample || rec.Phase != ph.id || replayed >= want {
				return nil
			}
			sink.Emit(rec.Sample)
			replayed++
			bodyBytes += int64(rec.Sample.BodyLen)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if replayed != want {
		return nil, fmt.Errorf("runstore: phase %q journal holds %d of %d checkpointed samples", ph.key, replayed, want)
	}

	if reg != nil {
		reg.Counter(scanner.MetSinkSamples).Add(int64(replayed))
		reg.Counter(scanner.MetSinkBytes).Add(bodyBytes)
		for _, cp := range checkpoints {
			if len(cp.Metrics) == 0 {
				continue
			}
			var snap telemetry.Snapshot
			if err := json.Unmarshal(cp.Metrics, &snap); err != nil {
				return nil, fmt.Errorf("runstore: phase %q checkpoint %d metrics: %w", ph.key, cp.Seq, err)
			}
			reg.Merge(&snap)
		}
	}
	s.opts.Metrics.RuntimeCounter(MetRecordsReplayed).Add(int64(replayed))
	return lost, nil
}

// journalSink is the engine-facing tee: every sample, checkpoint,
// outage, and coverage record is journaled and then forwarded to the
// wrapped sink. The first store error latches — later records still
// flow to the wrapped sink (the engine does not observe sink errors)
// and Store.Scan surfaces the latched error after the run.
type journalSink struct {
	store *Store
	phase *phaseState
	next  scanner.Sink
	err   error
}

func (j *journalSink) note(err error) {
	if j.err == nil && err != nil {
		j.err = err
	}
}

func (j *journalSink) Emit(s scanner.Sample) {
	j.note(j.store.journalSample(j.phase, s))
	j.next.Emit(s)
}

func (j *journalSink) EmitShardDone(d scanner.ShardDone) {
	cp := Checkpoint{Seq: d.Seq, Country: d.Country, Tasks: d.Tasks, Samples: d.Samples, Lost: d.Lost}
	if d.Metrics != nil {
		b, err := json.Marshal(d.Metrics)
		if err != nil {
			j.note(err)
		} else {
			cp.Metrics = b
		}
	}
	j.note(j.store.journalCheckpoint(j.phase, cp))
	if ss, ok := j.next.(scanner.ShardSink); ok {
		ss.EmitShardDone(d)
	}
}

func (j *journalSink) EmitOutage(o scanner.Outage) {
	j.note(j.store.journalOutage(j.phase, o))
	if os, ok := j.next.(scanner.OutageSink); ok {
		os.EmitOutage(o)
	}
}

func (j *journalSink) EmitCoverage(c scanner.Coverage) {
	j.note(j.store.journalCoverage(j.phase, c))
	if os, ok := j.next.(scanner.OutageSink); ok {
		os.EmitCoverage(c)
	}
}
