package runstore

import (
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"geoblock/internal/scanner"
)

// wireShard builds a representative shard payload for the codec tests.
func wireShard(n int) ([]scanner.Sample, Checkpoint) {
	samples := make([]scanner.Sample, n)
	for i := range samples {
		samples[i] = scanner.Sample{Domain: int32(i), Country: 7, Seed: uint64(1000 + i)}
	}
	cp := Checkpoint{Seq: 3, Country: "IR", Tasks: n, Samples: n, Metrics: []byte(`{"k":1}`)}
	return samples, cp
}

// TestShardFramesRoundtrip: encode → decode is the identity, and the
// bytes on the wire are exactly the frames the journal would hold, so
// a coordinator journaling a decoded shard writes the same content a
// local scan would.
func TestShardFramesRoundtrip(t *testing.T) {
	samples, cp := wireShard(5)
	b := EncodeShardFrames(samples, cp)

	gotSamples, gotCP, err := DecodeShardFrames(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSamples, samples) {
		t.Fatalf("samples round-trip mismatch:\n got %+v\nwant %+v", gotSamples, samples)
	}
	if !reflect.DeepEqual(gotCP, cp) {
		t.Fatalf("checkpoint round-trip mismatch:\n got %+v\nwant %+v", gotCP, cp)
	}

	// Byte-level equivalence with the journal's own framing.
	var want []byte
	for i := range samples {
		want = append(want, frame(encodeRecord(Record{Type: recSample, Sample: samples[i]}))...)
	}
	want = append(want, frame(encodeRecord(Record{Type: recCheckpoint, Checkpoint: cp}))...)
	if !reflect.DeepEqual(b, want) {
		t.Fatal("wire bytes differ from journal framing of the same records")
	}
}

// TestShardFramesEmptyShard: zero samples plus a checkpoint is a legal
// shard (every task lost to an outage) and must round-trip.
func TestShardFramesEmptyShard(t *testing.T) {
	cp := Checkpoint{Seq: 0, Country: "SY", Tasks: 4, Samples: 0, Lost: scanner.OutageDark}
	b := EncodeShardFrames(nil, cp)
	gotSamples, gotCP, err := DecodeShardFrames(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSamples) != 0 {
		t.Fatalf("empty shard decoded %d samples", len(gotSamples))
	}
	if !reflect.DeepEqual(gotCP, cp) {
		t.Fatalf("checkpoint = %+v, want %+v", gotCP, cp)
	}
}

// TestShardFramesStrictness: every malformed payload class the decoder
// promises to reject — a half-received completion must never be
// journaled.
func TestShardFramesStrictness(t *testing.T) {
	samples, cp := wireShard(3)
	good := EncodeShardFrames(samples, cp)

	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"empty payload", nil, "no checkpoint"},
		{"torn frame header", good[:frameHeader-2], "torn frame header"},
		{"torn payload", good[:len(good)-3], "overruns payload"},
		{"trailing bytes", append(append([]byte(nil), good...), good[:frameHeader+4]...), "trailing bytes"},
		{"samples but no checkpoint", good[:samplesOnlyLen(t, samples)], "no checkpoint"},
		{"crc mismatch", flipByte(good, frameHeader+1), "CRC mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeShardFrames(tc.b)
			if err == nil {
				t.Fatal("malformed payload decoded cleanly")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

// TestShardFramesLengthOverrun: a frame length beyond maxPayload is
// rejected before any allocation is attempted.
func TestShardFramesLengthOverrun(t *testing.T) {
	b := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(b[0:4], maxPayload+1)
	if _, _, err := DecodeShardFrames(b); err == nil || !strings.Contains(err.Error(), "overruns") {
		t.Fatalf("oversized frame length: err = %v", err)
	}
}

// TestShardFramesCountMismatch: a checkpoint whose sample count
// disagrees with the payload is rejected — the count is the shard's
// own integrity claim.
func TestShardFramesCountMismatch(t *testing.T) {
	samples, cp := wireShard(3)
	cp.Samples = 2
	b := EncodeShardFrames(samples, cp)
	if _, _, err := DecodeShardFrames(b); err == nil || !strings.Contains(err.Error(), "claims 2 samples, payload holds 3") {
		t.Fatalf("count mismatch: err = %v", err)
	}
}

// samplesOnlyLen returns the byte length of the sample frames alone —
// the prefix of a shard payload whose checkpoint never arrived.
func samplesOnlyLen(t *testing.T, samples []scanner.Sample) int {
	t.Helper()
	n := 0
	for i := range samples {
		n += len(frame(encodeRecord(Record{Type: recSample, Sample: samples[i]})))
	}
	return n
}

// flipByte returns a copy of b with one byte corrupted.
func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}
