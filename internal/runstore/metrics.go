// Metric names for the journal layer.
//
// Every runstore metric is runtime-class, and necessarily so: the
// store's whole point is that a resumed run does LESS I/O than an
// uninterrupted one — it replays instead of rewriting — so records
// written, replayed, and truncated differ between the two runs by
// construction. Putting any of them in the deterministic class would
// break the resume contract (crash → reopen → resume snapshots
// byte-identically to an uninterrupted run) the chaos matrix enforces.
// The deterministic view of a journaled scan is carried by the engine's
// own metrics, which replay restores; the store only describes its own
// I/O.
package runstore

const (
	// MetRecordsWritten counts records appended to the journal.
	MetRecordsWritten = "runstore.records.written"
	// MetRecordsReplayed counts sample records replayed into a sink on
	// resume.
	MetRecordsReplayed = "runstore.records.replayed"
	// MetRecordsTruncated counts records dropped by recovery: the torn
	// record at a crashed tail plus any orphan samples of a shard that
	// never reached its checkpoint.
	MetRecordsTruncated = "runstore.records.truncated"
	// MetSegmentRotations counts segment-file rotations.
	MetSegmentRotations = "runstore.segment.rotations"
	// MetFsyncLatency is the fsync latency histogram, in microseconds.
	MetFsyncLatency = "runstore.fsync.latency_us"
)
