// The fabric wire form: one completed shard rendered as the exact
// framed records the journal would hold for it. A worker encodes its
// unit result with EncodeShardFrames; the coordinator decodes, verifies
// every CRC, and journals the same sample/checkpoint content through
// its own store — so the coordinator's journal is a valid runstore
// journal byte-for-byte, and crash/resume composes with distribution
// for free.
package runstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"geoblock/internal/scanner"
)

// EncodeShardFrames renders one completed shard as runstore-framed
// records: the shard's samples in task order followed by its
// checkpoint. The phase ID on the wire is always zero — the coordinator
// re-homes records into its own journal's phase numbering.
func EncodeShardFrames(samples []scanner.Sample, cp Checkpoint) []byte {
	var out []byte
	for i := range samples {
		out = append(out, frame(encodeRecord(Record{Type: recSample, Sample: samples[i]}))...)
	}
	out = append(out, frame(encodeRecord(Record{Type: recCheckpoint, Checkpoint: cp}))...)
	return out
}

// DecodeShardFrames parses a shard completion payload. Decoding is
// strict — a torn frame, a CRC mismatch, trailing bytes, or any record
// shape other than "zero or more samples, then exactly one checkpoint"
// errors; a half-received completion must never be journaled.
func DecodeShardFrames(b []byte) ([]scanner.Sample, Checkpoint, error) {
	var samples []scanner.Sample
	var cp Checkpoint
	done := false
	for len(b) > 0 {
		if done {
			return nil, cp, fmt.Errorf("runstore: %d trailing bytes after shard checkpoint", len(b))
		}
		if len(b) < frameHeader {
			return nil, cp, fmt.Errorf("runstore: torn frame header (%d bytes)", len(b))
		}
		n := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if n > maxPayload || int(n) > len(b)-frameHeader {
			return nil, cp, fmt.Errorf("runstore: frame length %d overruns payload", n)
		}
		payload := b[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, cp, fmt.Errorf("runstore: frame CRC mismatch")
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return nil, cp, err
		}
		switch rec.Type {
		case recSample:
			samples = append(samples, rec.Sample)
		case recCheckpoint:
			cp = rec.Checkpoint
			done = true
		default:
			return nil, cp, fmt.Errorf("runstore: unexpected record type %d in shard payload", rec.Type)
		}
		b = b[frameHeader+int(n):]
	}
	if !done {
		return nil, cp, fmt.Errorf("runstore: shard payload carries no checkpoint")
	}
	if cp.Samples != len(samples) {
		return nil, cp, fmt.Errorf("runstore: shard checkpoint claims %d samples, payload holds %d", cp.Samples, len(samples))
	}
	return samples, cp, nil
}
