package runstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
)

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// journalShard writes n samples and then the committing checkpoint for
// shard seq.
func journalShard(t *testing.T, st *Store, ph *phaseState, seq, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s := scanner.Sample{Domain: int32(i), Country: int16(seq), Seed: uint64(seq*1000 + i)}
		if err := st.journalSample(ph, s); err != nil {
			t.Fatal(err)
		}
	}
	cp := Checkpoint{Seq: seq, Country: "US", Tasks: n, Samples: n}
	if err := st.journalCheckpoint(ph, cp); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFreshAndReopenEmpty: a new directory starts an empty journal
// with a manifest; reopening it finds no phases.
func TestOpenFreshAndReopenEmpty(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	if got := st.Phases(); len(got) != 0 {
		t.Fatalf("fresh journal has %d phases", len(got))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	want := manifestHeader + "\nsegment " + segName(0) + "\n"
	if string(b) != want {
		t.Fatalf("manifest = %q, want %q", b, want)
	}
	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	if got := st2.Phases(); len(got) != 0 {
		t.Fatalf("reopened empty journal has %d phases", len(got))
	}
}

// TestRecoverTornTail: garbage appended past the last fsync'd record
// — the torn frame a kill -9 leaves — is truncated on reopen, counted
// in the truncation metric, and the index is intact.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	journalShard(t, st, ph, 0, 5)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))
	committed, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Half a frame of a would-be record: length says 100, payload absent.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{100, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := telemetry.New()
	st2 := mustOpen(t, dir, Options{Metrics: reg})
	defer st2.Close()
	info, ok := st2.Phase("p")
	if !ok || info.Shards != 1 || info.Samples != 5 {
		t.Fatalf("recovered phase = %+v, want 1 shard / 5 samples", info)
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != committed.Size() {
		t.Fatalf("tail not truncated: %d bytes, want %d", after.Size(), committed.Size())
	}
	if got := reg.RuntimeCounter(MetRecordsTruncated).Value(); got != 1 {
		t.Fatalf("truncated counter = %d, want 1", got)
	}
}

// TestRecoverOrphanSamples: samples written after the last checkpoint
// belong to a shard that never committed; recovery drops them so the
// shard reruns cleanly on resume.
func TestRecoverOrphanSamples(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	journalShard(t, st, ph, 0, 3)
	// Orphans: a shard's samples with no committing checkpoint.
	for i := 0; i < 4; i++ {
		if err := st.journalSample(ph, scanner.Sample{Domain: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	st2 := mustOpen(t, dir, Options{Metrics: reg})
	info, _ := st2.Phase("p")
	if info.Shards != 1 || info.Samples != 3 {
		t.Fatalf("recovered phase = %+v, want 1 shard / 3 samples", info)
	}
	if got := reg.RuntimeCounter(MetRecordsTruncated).Value(); got != 4 {
		t.Fatalf("truncated counter = %d, want 4 orphans", got)
	}
	// The journal must physically end at the commit point: appending a
	// new shard and replaying must yield exactly 3+2 samples.
	ph2, err := st2.phaseByKey("p")
	if err != nil {
		t.Fatal(err)
	}
	journalShard(t, st2, ph2, 1, 2)
	var col scanner.Collect
	lost, err := st2.replayPhase(ph2, &col, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 2 || len(col.Samples) != 5 {
		t.Fatalf("replay after orphan truncation: %d shards / %d samples, want 2 / 5", len(lost), len(col.Samples))
	}
	st2.Close()
}

// phaseByKey looks up the in-memory phase state for tests.
func (s *Store) phaseByKey(key string) (*phaseState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ph := s.phases[key]
	if ph == nil {
		return nil, os.ErrNotExist
	}
	return ph, nil
}

// TestSegmentRotation: a tiny segment budget forces rotation at commit
// boundaries; the manifest tracks every segment and recovery walks them
// all in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	st := mustOpen(t, dir, Options{SegmentBytes: 256, Metrics: reg})
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 8; seq++ {
		journalShard(t, st, ph, seq, 6)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.RuntimeCounter(MetSegmentRotations).Value(); got < 2 {
		t.Fatalf("rotations = %d, want several at a 256-byte budget", got)
	}
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines)-1 < 3 {
		t.Fatalf("manifest lists %d segments, want at least 3:\n%s", len(lines)-1, b)
	}
	for i, ln := range lines[1:] {
		if ln != "segment "+segName(i) {
			t.Fatalf("manifest line %d = %q, want segment %s", i, ln, segName(i))
		}
	}

	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	info, _ := st2.Phase("p")
	if info.Shards != 8 || info.Samples != 48 {
		t.Fatalf("multi-segment recovery = %+v, want 8 shards / 48 samples", info)
	}
	ph2, err := st2.phaseByKey("p")
	if err != nil {
		t.Fatal(err)
	}
	var col scanner.Collect
	if _, err := st2.replayPhase(ph2, &col, nil); err != nil {
		t.Fatal(err)
	}
	if len(col.Samples) != 48 {
		t.Fatalf("replayed %d samples across segments, want 48", len(col.Samples))
	}
}

// TestRecoverWithoutManifest: a journal whose manifest was lost (crash
// before the first rewrite landed) is still recovered from the
// seg-*.log glob, in name order.
func TestRecoverWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{SegmentBytes: 256})
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 6; seq++ {
		journalShard(t, st, ph, seq, 4)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	info, _ := st2.Phase("p")
	if info.Shards != 6 || info.Samples != 24 {
		t.Fatalf("glob recovery = %+v, want 6 shards / 24 samples", info)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("recovery did not rewrite the manifest: %v", err)
	}
}

// TestRecoverDropsLaterSegments: a torn frame in an early segment
// truncates there and removes every later segment — the disk's story
// ends at the last believable commit.
func TestRecoverDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{SegmentBytes: 256})
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 6; seq++ {
		journalShard(t, st, ph, seq, 4)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte mid-way through the second segment.
	seg1 := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(seg1, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	info, _ := st2.Phase("p")
	if info.Shards >= 6 || info.Shards == 0 {
		t.Fatalf("recovered %d shards, want a proper prefix of 6", info.Shards)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("%d segments survive a torn frame in segment 1, want at most 2: %v", len(segs), segs)
	}
}

// TestCrashHookSevers: the chaos hook tears the record it fires on and
// latches the store into ErrSevered, and recovery after the sever sees
// only the committed prefix.
func TestCrashHookSevers(t *testing.T) {
	dir := t.TempDir()
	var calls int64
	st := mustOpen(t, dir, Options{Crash: func(written int64) bool {
		calls++
		return written >= 9 // phase-begin + 5 samples + checkpoint + 2 samples
	}})
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	journalShard(t, st, ph, 0, 5)
	var severErr error
	for i := 0; i < 10 && severErr == nil; i++ {
		severErr = st.journalSample(ph, scanner.Sample{Domain: int32(i)})
	}
	if severErr != ErrSevered {
		t.Fatalf("sever error = %v, want ErrSevered", severErr)
	}
	if err := st.journalCheckpoint(ph, Checkpoint{Seq: 1}); err != ErrSevered {
		t.Fatalf("append after sever = %v, want ErrSevered", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	st2 := mustOpen(t, dir, Options{Metrics: reg})
	defer st2.Close()
	info, _ := st2.Phase("p")
	if info.Shards != 1 || info.Samples != 5 {
		t.Fatalf("post-sever recovery = %+v, want 1 shard / 5 samples", info)
	}
	// 2 whole orphan samples plus the torn half-record.
	if got := reg.RuntimeCounter(MetRecordsTruncated).Value(); got != 3 {
		t.Fatalf("truncated counter = %d, want 3", got)
	}
}

// TestCheckpointOrdering: out-of-order checkpoint sequence numbers are
// a program bug, caught at write time and at recovery time.
func TestCheckpointOrdering(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	defer st.Close()
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.journalCheckpoint(ph, Checkpoint{Seq: 1}); err == nil {
		t.Fatal("checkpoint seq 1 accepted before seq 0")
	}
	if err := st.journalCheckpoint(ph, Checkpoint{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.beginPhase("p", "phase", 42); err == nil {
		t.Fatal("duplicate phase begin accepted")
	}
}

// TestMissingMidSequenceSegment: deleting a segment the manifest still
// lists is data loss, not a crash artifact — a crash only ever tears
// the tail. Open must refuse and the error must name the missing file,
// because "no such file" alone reads like a fresh journal.
func TestMissingMidSequenceSegment(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{SegmentBytes: 256})
	ph, err := st.beginPhase("p", "phase", 42)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 8; seq++ {
		journalShard(t, st, ph, seq, 6)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments at a 256-byte budget; the test needs a middle one to delete", len(segs))
	}
	victim := segName(1)
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("journal with a missing mid-sequence segment opened")
	}
	if !strings.Contains(err.Error(), victim) {
		t.Fatalf("error does not name the missing segment %s: %v", victim, err)
	}
	if !strings.Contains(err.Error(), "data loss") {
		t.Fatalf("error does not call out data loss: %v", err)
	}
}

// TestBadManifestErrors: a manifest with a wrong header or junk lines
// is corruption of fsync'd state, which errors rather than guesses.
func TestBadManifestErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not a manifest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("bad manifest header opened")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(manifestHeader+"\njunk line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("bad manifest line opened")
	}
}
