// Package runstore is the persistence layer: an append-only,
// crash-safe journal of scanner samples plus a checkpoint index of
// completed work, so a long study interrupted at any byte resumes by
// replaying what it has instead of refetching it.
//
// Layout: a run directory holds numbered segment files (seg-00000000.log,
// rotated once a segment passes Options.SegmentBytes at a commit
// boundary) and a MANIFEST listing them in order, rewritten atomically
// on every rotation. Each segment opens with an 8-byte magic and then
// carries length-prefixed, CRC-32C-checked records (see record.go).
//
// Durability discipline: sample records are buffered only by the OS —
// the store issues no fsync for them — while every checkpoint, phase,
// outage, and coverage record is fsync'd before the append returns.
// A checkpoint is therefore the commit point for the samples before
// it: after a crash, recovery truncates the journal back to the last
// fsync'd non-sample record, dropping the torn tail record (if any)
// and any orphan samples of a shard that never checkpointed. Those
// shards simply run again on resume. Recovery never errors on a torn
// tail; corruption earlier than the tail means the disk lied about an
// fsync, and that does error.
package runstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
)

// ErrSevered is returned by journal writes after the fault-injection
// crash hook fired: the store has written a deliberately torn record
// and refuses all further appends, exactly as a killed process would.
var ErrSevered = errors.New("runstore: store severed by crash hook")

// manifestName is the journal's segment list file.
const manifestName = "MANIFEST"

// manifestHeader is the first line of a manifest.
const manifestHeader = "geoblock-runstore v1"

// DefaultSegmentBytes is the rotation threshold when Options leaves it
// zero.
const DefaultSegmentBytes = 4 << 20

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the journal to a fresh segment once the
	// current one passes this size. Rotation happens only at commit
	// boundaries (after an fsync'd record), so a segment may overshoot
	// by one shard's samples. Zero takes DefaultSegmentBytes.
	SegmentBytes int64
	// Metrics, when non-nil, receives the store's counters and the
	// fsync latency histogram (see metrics.go; all runtime-class).
	Metrics *telemetry.Registry
	// Crash, when non-nil, is consulted before every append with the
	// number of records this process has written so far; returning true
	// severs the store mid-record (see ErrSevered). It is the chaos
	// matrix's kill -9: everything after the last fsync'd record may be
	// torn. Production runs leave it nil.
	Crash func(written int64) bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// phaseState is the in-memory index of one journaled phase.
type phaseState struct {
	id          int
	key         string
	name        string
	fingerprint uint64
	done        bool
	checkpoints []Checkpoint
}

func (ph *phaseState) samples() int {
	n := 0
	for _, cp := range ph.checkpoints {
		n += cp.Samples
	}
	return n
}

// PhaseInfo is the exported view of one journaled phase.
type PhaseInfo struct {
	// Key is the pipeline's phase key (unique per scan invocation).
	Key string
	// Name is the scanner phase name the scan ran under.
	Name string
	// Done reports whether the phase completed.
	Done bool
	// Shards is the number of checkpointed (committed) shards.
	Shards int
	// Samples is the number of replayable samples across them.
	Samples int
}

// Store is an open run journal. Methods are safe for concurrent use,
// though scans themselves run one phase at a time.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	phases   map[string]*phaseState
	byID     []*phaseState
	segments []string // active segment file names, in order
	seg      *os.File // tail segment, open for append
	segBytes int64
	written  int64 // records appended by this process (crash-hook clock)
	severed  bool
	closed   bool
}

// Open opens (or creates) the journal in dir and recovers its index:
// every segment is scanned, records validate against their CRCs, and
// the journal is truncated back to its commit point — the position
// after the last fsync'd non-sample record — dropping a torn tail and
// any orphan samples beyond it. A fresh directory starts an empty
// journal.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), phases: map[string]*phaseState{}}
	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := s.createSegmentLocked(0); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := s.recoverFrom(segs); err != nil {
		return nil, err
	}
	return s, nil
}

// listSegments returns the segment file names in journal order: the
// manifest's list when one exists, otherwise (first open ever crashed
// before writing it) the directory's seg-*.log files sorted by name.
func (s *Store) listSegments() ([]string, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err == nil {
		lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
		if len(lines) == 0 || lines[0] != manifestHeader {
			return nil, fmt.Errorf("runstore: %s: bad manifest header", s.dir)
		}
		var segs []string
		for _, ln := range lines[1:] {
			name, ok := strings.CutPrefix(ln, "segment ")
			if !ok {
				return nil, fmt.Errorf("runstore: %s: bad manifest line %q", s.dir, ln)
			}
			segs = append(segs, name)
		}
		return segs, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	segs, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(segs)
	for i, p := range segs {
		segs[i] = filepath.Base(p)
	}
	return segs, nil
}

// segName renders the i-th segment file name.
func segName(i int) string { return fmt.Sprintf("seg-%08d.log", i) }

// createSegmentLocked starts segment index i as the new tail and
// rewrites the manifest to match. Callers hold s.mu (or, during Open,
// own the store exclusively before it is published).
func (s *Store) createSegmentLocked(i int) error {
	name := segName(i)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	s.seg = f
	s.segBytes = int64(len(segMagic))
	s.segments = append(s.segments, name)
	return s.writeManifestLocked()
}

// writeManifestLocked atomically rewrites the manifest from
// s.segments. The slice is ordered by construction — never a map
// iteration — so the bytes are deterministic.
func (s *Store) writeManifestLocked() error {
	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	for _, name := range s.segments {
		b.WriteString("segment ")
		b.WriteString(name)
		b.WriteByte('\n')
	}
	path := filepath.Join(s.dir, manifestName)
	tmp, err := os.CreateTemp(s.dir, ".manifest.tmp*")
	if err != nil {
		return err
	}
	_, err = tmp.WriteString(b.String())
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp.Name(), 0o644)
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
	}
	return err
}

// recoverFrom rebuilds the index from the listed segments and
// truncates the journal to its commit point.
func (s *Store) recoverFrom(segs []string) error {
	// Commit point: segment index + byte offset just past the last
	// non-sample record (those are the fsync'd ones).
	commitSeg, commitOff := 0, int64(len(segMagic))
	orphans := 0 // valid sample records past the commit point
	torn := false

	for i, name := range segs {
		off, err := s.scanSegment(name, func(rec Record, end int64) error {
			if rec.Type == recSample {
				orphans++
				return nil
			}
			if err := s.applyRecord(rec); err != nil {
				return err
			}
			commitSeg, commitOff = i, end
			orphans = 0
			return nil
		})
		if err != nil {
			return err
		}
		if off >= 0 {
			// Torn or corrupt frame at off: everything after the commit
			// point goes, including any later segments.
			torn = true
			break
		}
	}

	truncated := orphans
	if torn {
		truncated++
	}
	// Drop segments past the commit segment and cut the commit segment
	// back to the commit offset. On a clean shutdown this is a no-op
	// (the journal already ends at a commit point).
	for _, name := range segs[commitSeg+1:] {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	s.segments = append([]string(nil), segs[:commitSeg+1]...)
	tail := filepath.Join(s.dir, s.segments[commitSeg])
	st, err := os.Stat(tail)
	if err != nil {
		return err
	}
	if st.Size() != commitOff {
		if err := os.Truncate(tail, commitOff); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.seg = f
	s.segBytes = commitOff
	if truncated > 0 {
		s.opts.Metrics.RuntimeCounter(MetRecordsTruncated).Add(int64(truncated))
	}
	return s.writeManifestLocked()
}

// scanSegment streams name's records into apply (with each record's
// end offset) and reports where the valid prefix ends: -1 when the
// segment parsed cleanly to EOF, otherwise the offset of the first
// torn or corrupt frame. Errors are reserved for I/O failures, a bad
// magic, and apply rejections — a bad frame is data loss, not an
// error, because the tail of a crashed journal is expected to be torn.
func (s *Store) scanSegment(name string, apply func(rec Record, end int64) error) (int64, error) {
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		// A listed-but-unopenable segment is not a torn tail: the
		// manifest promised committed data this directory no longer
		// serves. Name the segment — "file not found" alone reads like a
		// fresh journal when it is actually data loss.
		return -1, fmt.Errorf("runstore: segment %s is listed in the manifest but unreadable (a missing mid-sequence segment is data loss, not a crash artifact): %w", name, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		return -1, fmt.Errorf("runstore: %s: bad segment magic", name)
	}
	off := int64(len(segMagic))
	var head [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF {
				return -1, nil // clean end
			}
			return off, nil // torn header
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if n > maxPayload {
			return off, nil // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, nil // corrupt payload
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return off, nil // CRC fine but undecodable: treat as torn
		}
		off += frameHeader + int64(n)
		if err := apply(rec, off); err != nil {
			return -1, err
		}
	}
}

// applyRecord folds one committed record into the in-memory index.
func (s *Store) applyRecord(rec Record) error {
	switch rec.Type {
	case recPhaseBegin:
		if s.phases[rec.Key] != nil {
			return fmt.Errorf("runstore: phase %q begun twice", rec.Key)
		}
		ph := &phaseState{id: len(s.byID), key: rec.Key, name: rec.Name, fingerprint: rec.Fingerprint}
		s.phases[rec.Key] = ph
		s.byID = append(s.byID, ph)
	case recCheckpoint:
		ph, err := s.phaseByID(rec.Phase)
		if err != nil {
			return err
		}
		if rec.Checkpoint.Seq != len(ph.checkpoints) {
			return fmt.Errorf("runstore: phase %q checkpoint %d out of order (have %d)",
				ph.key, rec.Checkpoint.Seq, len(ph.checkpoints))
		}
		ph.checkpoints = append(ph.checkpoints, rec.Checkpoint)
	case recPhaseDone:
		ph, err := s.phaseByID(rec.Phase)
		if err != nil {
			return err
		}
		ph.done = true
	case recOutage, recCoverage:
		// Accounting records are audit data: resume recomputes outages
		// and coverage from the checkpoints' loss reasons, so recovery
		// only validates the phase reference.
		if _, err := s.phaseByID(rec.Phase); err != nil {
			return err
		}
	default:
		return fmt.Errorf("runstore: unexpected record type %d in index", rec.Type)
	}
	return nil
}

func (s *Store) phaseByID(id int) (*phaseState, error) {
	if id < 0 || id >= len(s.byID) {
		return nil, fmt.Errorf("runstore: record references unknown phase %d", id)
	}
	return s.byID[id], nil
}

// append frames and writes one record, honoring the crash hook and the
// durability discipline (fsync on every non-sample record), rotating
// segments at commit boundaries. Callers hold s.mu.
func (s *Store) appendLocked(rec Record) error {
	if s.closed {
		return errors.New("runstore: store is closed")
	}
	if s.severed {
		return ErrSevered
	}
	fr := frame(encodeRecord(rec))
	//geolint:allow-block wirecheck deliberate torn-frame injection: the crash hook discards write and sync errors on purpose to model kill -9 mid-record
	if s.opts.Crash != nil && s.opts.Crash(s.written) {
		// Sever mid-record: flush a torn half-frame, exactly the state a
		// kill -9 between write and fsync leaves behind.
		_, _ = s.seg.Write(fr[:len(fr)/2])
		_ = s.seg.Sync()
		s.severed = true
		return ErrSevered
	}
	if _, err := s.seg.Write(fr); err != nil {
		return err
	}
	s.written++
	s.segBytes += int64(len(fr))
	s.opts.Metrics.RuntimeCounter(MetRecordsWritten).Add(1)
	if rec.Type == recSample {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	if s.segBytes >= s.opts.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// syncLocked fsyncs the tail segment, timing the call on the
// registry's clock seam (never the wall clock directly).
func (s *Store) syncLocked() error {
	reg := s.opts.Metrics
	start := reg.Now()
	err := s.seg.Sync()
	if reg != nil {
		reg.RuntimeHistogram(MetFsyncLatency, 0, 50000, 25).Observe(float64(reg.Now().Sub(start).Microseconds()))
	}
	return err
}

// rotateLocked closes the tail segment and starts the next one.
func (s *Store) rotateLocked() error {
	if err := s.seg.Close(); err != nil {
		return err
	}
	s.opts.Metrics.RuntimeCounter(MetSegmentRotations).Add(1)
	return s.createSegmentLocked(len(s.segments))
}

// Close fsyncs and closes the tail segment. Further writes error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.seg == nil {
		return nil
	}
	var err error
	if !s.severed {
		err = s.seg.Sync()
	}
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the journal directory.
func (s *Store) Dir() string { return s.dir }

// Phases lists the journaled phases in begin order.
func (s *Store) Phases() []PhaseInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PhaseInfo, 0, len(s.byID))
	for _, ph := range s.byID {
		out = append(out, PhaseInfo{Key: ph.key, Name: ph.name, Done: ph.done, Shards: len(ph.checkpoints), Samples: ph.samples()})
	}
	return out
}

// Phase reports the journaled state of one phase key.
func (s *Store) Phase(key string) (PhaseInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ph := s.phases[key]
	if ph == nil {
		return PhaseInfo{}, false
	}
	return PhaseInfo{Key: ph.key, Name: ph.name, Done: ph.done, Shards: len(ph.checkpoints), Samples: ph.samples()}, true
}

// beginPhase journals a phase announcement and indexes it.
func (s *Store) beginPhase(key, name string, fingerprint uint64) (*phaseState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phases[key] != nil {
		return nil, fmt.Errorf("runstore: phase %q begun twice", key)
	}
	ph := &phaseState{id: len(s.byID), key: key, name: name, fingerprint: fingerprint}
	if err := s.appendLocked(Record{Type: recPhaseBegin, Key: key, Name: name, Fingerprint: fingerprint}); err != nil {
		return nil, err
	}
	s.phases[key] = ph
	s.byID = append(s.byID, ph)
	return ph, nil
}

// journalSample appends one sample record (no fsync; the shard's
// checkpoint is the commit point).
func (s *Store) journalSample(ph *phaseState, sample scanner.Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(Record{Type: recSample, Phase: ph.id, Sample: sample})
}

// journalCheckpoint appends and fsyncs one shard checkpoint,
// committing the samples before it.
func (s *Store) journalCheckpoint(ph *phaseState, cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cp.Seq != len(ph.checkpoints) {
		return fmt.Errorf("runstore: phase %q checkpoint %d out of order (have %d)", ph.key, cp.Seq, len(ph.checkpoints))
	}
	if err := s.appendLocked(Record{Type: recCheckpoint, Phase: ph.id, Checkpoint: cp}); err != nil {
		return err
	}
	ph.checkpoints = append(ph.checkpoints, cp)
	return nil
}

// journalOutage appends and fsyncs one outage record.
func (s *Store) journalOutage(ph *phaseState, o scanner.Outage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(Record{Type: recOutage, Phase: ph.id, Outage: o})
}

// journalCoverage appends and fsyncs the coverage summary.
func (s *Store) journalCoverage(ph *phaseState, c scanner.Coverage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(Record{Type: recCoverage, Phase: ph.id, Coverage: c})
}

// completePhase journals the phase-done marker.
func (s *Store) completePhase(ph *phaseState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(Record{Type: recPhaseDone, Phase: ph.id}); err != nil {
		return err
	}
	ph.done = true
	return nil
}
