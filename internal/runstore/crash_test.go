package runstore

import (
	"context"
	"errors"
	"testing"

	"geoblock/internal/faults"
	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
	"geoblock/internal/worldgen"
)

var crashWorld = worldgen.Generate(worldgen.TestConfig())

// crashInputs is a workload small enough to run the full matrix in
// seconds but wide enough to span many shards and countries.
func crashInputs() ([]string, []geo.CountryCode, []scanner.Task) {
	var domains []string
	for _, d := range crashWorld.Top10K()[:30] {
		domains = append(domains, d.Name)
	}
	countries := []geo.CountryCode{"US", "DE", "IR", "SY", "BR"}
	return domains, countries, scanner.CrossProduct(len(domains), len(countries))
}

func crashConfig(conc int, reg *telemetry.Registry) scanner.Config {
	return scanner.Config{
		Samples:            2,
		Retries:            2,
		RequestsPerExit:    10,
		MaxRedirects:       10,
		Headers:            scanner.BrowserHeaders(),
		Phase:              "crash-test",
		VerifyConnectivity: true,
		Concurrency:        conc,
		Metrics:            reg,
	}
}

// runStored drives one journaled scan attempt against a fresh mesh and
// returns the collected output, the deterministic snapshot text, and
// the scan error.
func runStored(t *testing.T, dir string, conc int, crash func(int64) bool) (*scanner.Collect, string, error) {
	t.Helper()
	domains, countries, tasks := crashInputs()
	net := proxy.NewNetwork(crashWorld)
	reg := telemetry.New()
	st, err := Open(dir, Options{Metrics: reg, Crash: crash})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var col scanner.Collect
	scanErr := st.Scan(Scan{
		Key:         "crash",
		Fingerprint: 403,
		Cfg:         crashConfig(conc, reg),
		Sink:        &col,
		Run: func(cfg scanner.Config, sink scanner.Sink) error {
			return scanner.Run(context.Background(), net, domains, countries, tasks, cfg, sink)
		},
	})
	return &col, reg.Snapshot().Deterministic().Text(), scanErr
}

// runBare is the uninterrupted, store-less reference scan.
func runBare(t *testing.T, conc int) (*scanner.Collect, string) {
	t.Helper()
	domains, countries, tasks := crashInputs()
	net := proxy.NewNetwork(crashWorld)
	reg := telemetry.New()
	var col scanner.Collect
	if err := scanner.Run(context.Background(), net, domains, countries, tasks, crashConfig(conc, reg), &col); err != nil {
		t.Fatal(err)
	}
	return &col, reg.Snapshot().Deterministic().Text()
}

// assertSameScan byte-compares two scans' samples, outages, coverage,
// and deterministic telemetry.
func assertSameScan(t *testing.T, label string, got, want *scanner.Collect, gotSnap, wantSnap string) {
	t.Helper()
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%s: %d samples, want %d", label, len(got.Samples), len(want.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("%s: sample %d differs:\ngot  %+v\nwant %+v", label, i, got.Samples[i], want.Samples[i])
		}
	}
	if len(got.Outages) != len(want.Outages) {
		t.Fatalf("%s: %d outages, want %d", label, len(got.Outages), len(want.Outages))
	}
	for i := range got.Outages {
		if got.Outages[i] != want.Outages[i] {
			t.Fatalf("%s: outage %d differs:\ngot  %+v\nwant %+v", label, i, got.Outages[i], want.Outages[i])
		}
	}
	if got.Coverage.Requested != want.Coverage.Requested ||
		got.Coverage.Attained != want.Coverage.Attained ||
		got.Coverage.TasksLost != want.Coverage.TasksLost ||
		len(got.Coverage.Lost) != len(want.Coverage.Lost) {
		t.Fatalf("%s: coverage differs:\ngot  %+v\nwant %+v", label, got.Coverage, want.Coverage)
	}
	if gotSnap != wantSnap {
		t.Fatalf("%s: deterministic snapshot differs:\n--- got ---\n%s\n--- want ---\n%s", label, gotSnap, wantSnap)
	}
}

// TestKillMidWriteMatrix is the acceptance criterion: sever the journal
// mid-record at a seeded point, reopen, resume — and the resumed run's
// samples, outages, coverage, and deterministic telemetry snapshot are
// byte-identical to an uninterrupted run, at Concurrency 1, 4, and 32
// across crash seeds. The crash may also land after the whole scan
// completed (large spans), in which case the severed attempt itself
// already succeeded — resume must then be a pure replay.
func TestKillMidWriteMatrix(t *testing.T) {
	refCol, refSnap := runBare(t, 1)

	for _, conc := range []int{1, 4, 32} {
		// The same schedule without a store must already match.
		bareCol, bareSnap := runBare(t, conc)
		assertSameScan(t, "bare", bareCol, refCol, bareSnap, refSnap)

		for _, seed := range []uint64{1, 2, 3} {
			for _, span := range []int64{25, 200} {
				dir := t.TempDir()
				crash := faults.New(seed).StoreCrash(span)

				col, snap, err := runStored(t, dir, conc, crash)
				if err == nil {
					// The seeded kill point landed past the journal's record
					// count: the first attempt already completed and must be
					// correct on its own.
					assertSameScan(t, "uncrashed first attempt", col, refCol, snap, refSnap)
				} else if !errors.Is(err, ErrSevered) {
					t.Fatalf("conc %d seed %d span %d: first attempt: %v", conc, seed, span, err)
				}

				// Crash → reopen → resume: the second attempt replays the
				// committed prefix and fetches only the rest.
				col2, snap2, err := runStored(t, dir, conc, nil)
				if err != nil {
					t.Fatalf("conc %d seed %d span %d: resume: %v", conc, seed, span, err)
				}
				assertSameScan(t, "resume", col2, refCol, snap2, refSnap)
			}
		}
	}
}

// TestResumeOfCompletePhase: reopening a journal whose phase finished
// replays everything from disk — zero fetching — and still reproduces
// the identical output and deterministic snapshot.
func TestResumeOfCompletePhase(t *testing.T) {
	refCol, refSnap := runBare(t, 4)
	dir := t.TempDir()

	col, snap, err := runStored(t, dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameScan(t, "journaled", col, refCol, snap, refSnap)

	col2, snap2, err := runStored(t, dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameScan(t, "replay", col2, refCol, snap2, refSnap)
}

// TestDoubleCrashResume: a resume attempt that itself crashes still
// leaves a resumable journal — checkpoints only ever accumulate.
func TestDoubleCrashResume(t *testing.T) {
	refCol, refSnap := runBare(t, 4)
	dir := t.TempDir()

	if _, _, err := runStored(t, dir, 4, faults.New(1).StoreCrash(20)); !errors.Is(err, ErrSevered) {
		t.Fatalf("first crash: %v, want ErrSevered", err)
	}
	if _, _, err := runStored(t, dir, 4, faults.New(2).StoreCrash(60)); !errors.Is(err, ErrSevered) {
		t.Fatalf("second crash: %v, want ErrSevered", err)
	}
	col, snap, err := runStored(t, dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameScan(t, "after two crashes", col, refCol, snap, refSnap)
}

// TestFingerprintMismatch: resuming with a different study fingerprint
// errors instead of splicing two scans together.
func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runStored(t, dir, 1, nil); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	err = st.Scan(Scan{
		Key:         "crash",
		Fingerprint: 404, // journal holds 403
		Cfg:         crashConfig(1, nil),
		Sink:        &scanner.Collect{},
		Run: func(scanner.Config, scanner.Sink) error {
			t.Fatal("engine ran despite fingerprint mismatch")
			return nil
		},
	})
	if err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
}
