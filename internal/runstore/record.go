// The record codec: a deterministic binary encoding for journal
// records. Each record travels in a frame of
//
//	u32le payload length | u32le CRC-32C of payload | payload
//
// and the payload is a type byte followed by varint-coded fields
// (zigzag for signed, uvarint for unsigned, length-prefixed bytes for
// strings). The encoding has no maps, no floats, and no timestamps, so
// the same records always produce the same bytes — golden segment
// files stay stable across Go versions.
package runstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"geoblock/internal/geo"
	"geoblock/internal/scanner"
)

// Record types. The journal is a single interleaved stream: phases
// announce themselves once, then their samples and checkpoints carry
// the phase ID.
const (
	recPhaseBegin byte = 1 // key, name, fingerprint
	recSample     byte = 2 // phase ID + one scanner.Sample
	recCheckpoint byte = 3 // phase ID + one completed shard
	recOutage     byte = 4 // phase ID + one scanner.Outage
	recCoverage   byte = 5 // phase ID + the scanner.Coverage summary
	recPhaseDone  byte = 6 // phase ID
)

// segMagic opens every segment file.
const segMagic = "GBRUNST1"

// frameHeader is the byte length of the length+CRC prefix.
const frameHeader = 8

// maxPayload bounds a single record payload; a frame announcing more
// is treated as corruption, not an allocation request.
const maxPayload = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is the decoded form of one journal record. Type selects which
// of the other fields are meaningful; Phase identifies the owning
// phase for every type but recPhaseBegin (where the ID is implicit in
// announcement order).
type Record struct {
	Type  byte
	Phase int

	// recPhaseBegin.
	Key         string
	Name        string
	Fingerprint uint64

	// recSample.
	Sample scanner.Sample

	// recCheckpoint.
	Checkpoint Checkpoint

	// recOutage.
	Outage scanner.Outage

	// recCoverage.
	Coverage scanner.Coverage
}

// Checkpoint records one completed scheduler shard: its canonical
// sequence number, country, task and sample counts, loss reason, and
// the JSON-encoded deterministic telemetry snapshot the shard staged
// (nil when the scan ran without a registry). A checkpoint is the
// commit point for the sample records preceding it.
type Checkpoint struct {
	Seq     int
	Country string
	Tasks   int
	Samples int
	Lost    scanner.OutageReason
	Metrics []byte
}

// encodeRecord renders rec's payload (type byte + fields).
func encodeRecord(rec Record) []byte {
	b := []byte{rec.Type}
	switch rec.Type {
	case recPhaseBegin:
		b = appendString(b, rec.Key)
		b = appendString(b, rec.Name)
		b = binary.AppendUvarint(b, rec.Fingerprint)
	case recSample:
		b = binary.AppendUvarint(b, uint64(rec.Phase))
		s := rec.Sample
		b = binary.AppendVarint(b, int64(s.Domain))
		b = binary.AppendVarint(b, int64(s.Country))
		b = binary.AppendUvarint(b, uint64(s.Attempt))
		b = binary.AppendUvarint(b, uint64(s.Err))
		b = binary.AppendVarint(b, int64(s.Status))
		b = binary.AppendVarint(b, int64(s.BodyLen))
		b = binary.AppendUvarint(b, uint64(s.ExitIP))
		b = binary.AppendUvarint(b, s.Seed)
		b = appendString(b, s.Body)
	case recCheckpoint:
		b = binary.AppendUvarint(b, uint64(rec.Phase))
		cp := rec.Checkpoint
		b = binary.AppendUvarint(b, uint64(cp.Seq))
		b = appendString(b, cp.Country)
		b = binary.AppendUvarint(b, uint64(cp.Tasks))
		b = binary.AppendUvarint(b, uint64(cp.Samples))
		b = binary.AppendUvarint(b, uint64(cp.Lost))
		b = appendBytes(b, cp.Metrics)
	case recOutage:
		b = binary.AppendUvarint(b, uint64(rec.Phase))
		o := rec.Outage
		b = appendString(b, string(o.Country))
		b = binary.AppendUvarint(b, uint64(o.Reason))
		b = binary.AppendUvarint(b, uint64(o.Shards))
		b = binary.AppendUvarint(b, uint64(o.ShardsTotal))
		b = binary.AppendUvarint(b, uint64(o.Tasks))
	case recCoverage:
		b = binary.AppendUvarint(b, uint64(rec.Phase))
		c := rec.Coverage
		b = binary.AppendUvarint(b, uint64(c.Requested))
		b = binary.AppendUvarint(b, uint64(c.Attained))
		b = binary.AppendUvarint(b, uint64(c.TasksLost))
		b = binary.AppendUvarint(b, uint64(len(c.Lost)))
		for _, cc := range c.Lost {
			b = appendString(b, string(cc))
		}
	case recPhaseDone:
		b = binary.AppendUvarint(b, uint64(rec.Phase))
	default:
		panic(fmt.Sprintf("runstore: encodeRecord of unknown type %d", rec.Type))
	}
	return b
}

// frame wraps a payload in the length+CRC header.
func frame(payload []byte) []byte {
	b := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// DecodeRecord parses one record payload (as framed by the store,
// after its CRC already checked out). Decoding is strict: unknown
// types, fields outside their target range, and payloads with missing
// or trailing bytes all error rather than round into a plausible
// record.
func DecodeRecord(payload []byte) (Record, error) {
	d := dec{b: payload}
	var rec Record
	t, err := d.u8()
	if err != nil {
		return rec, err
	}
	rec.Type = t
	switch t {
	case recPhaseBegin:
		rec.Key, err = d.str()
		if err == nil {
			rec.Name, err = d.str()
		}
		if err == nil {
			rec.Fingerprint, err = d.uvarint()
		}
	case recSample:
		rec.Phase, err = d.count()
		s := &rec.Sample
		if err == nil {
			var v int64
			v, err = d.rangedVarint(math.MinInt32, math.MaxInt32)
			s.Domain = int32(v)
		}
		if err == nil {
			var v int64
			v, err = d.rangedVarint(math.MinInt16, math.MaxInt16)
			s.Country = int16(v)
		}
		if err == nil {
			var v byte
			v, err = d.uvarint8()
			s.Attempt = v
		}
		if err == nil {
			var v byte
			v, err = d.uvarint8()
			s.Err = scanner.ErrCode(v)
		}
		if err == nil {
			var v int64
			v, err = d.rangedVarint(math.MinInt16, math.MaxInt16)
			s.Status = int16(v)
		}
		if err == nil {
			var v int64
			v, err = d.rangedVarint(math.MinInt32, math.MaxInt32)
			s.BodyLen = int32(v)
		}
		if err == nil {
			var v uint64
			v, err = d.uvarint()
			if err == nil && v > math.MaxUint32 {
				err = fmt.Errorf("runstore: exit IP %d overflows uint32", v)
			}
			s.ExitIP = geo.IP(v)
		}
		if err == nil {
			s.Seed, err = d.uvarint()
		}
		if err == nil {
			s.Body, err = d.str()
		}
	case recCheckpoint:
		rec.Phase, err = d.count()
		cp := &rec.Checkpoint
		if err == nil {
			cp.Seq, err = d.count()
		}
		if err == nil {
			cp.Country, err = d.str()
		}
		if err == nil {
			cp.Tasks, err = d.count()
		}
		if err == nil {
			cp.Samples, err = d.count()
		}
		if err == nil {
			var v byte
			v, err = d.uvarint8()
			cp.Lost = scanner.OutageReason(v)
		}
		if err == nil {
			cp.Metrics, err = d.bytes()
		}
	case recOutage:
		rec.Phase, err = d.count()
		o := &rec.Outage
		if err == nil {
			var s string
			s, err = d.str()
			o.Country = geo.CountryCode(s)
		}
		if err == nil {
			var v byte
			v, err = d.uvarint8()
			o.Reason = scanner.OutageReason(v)
		}
		if err == nil {
			o.Shards, err = d.count()
		}
		if err == nil {
			o.ShardsTotal, err = d.count()
		}
		if err == nil {
			o.Tasks, err = d.count()
		}
	case recCoverage:
		rec.Phase, err = d.count()
		c := &rec.Coverage
		if err == nil {
			c.Requested, err = d.count()
		}
		if err == nil {
			c.Attained, err = d.count()
		}
		if err == nil {
			c.TasksLost, err = d.count()
		}
		if err == nil {
			var n int
			n, err = d.count()
			for i := 0; err == nil && i < n; i++ {
				var s string
				s, err = d.str()
				c.Lost = append(c.Lost, geo.CountryCode(s))
			}
		}
	case recPhaseDone:
		rec.Phase, err = d.count()
	default:
		return rec, fmt.Errorf("runstore: unknown record type %d", t)
	}
	if err != nil {
		return rec, err
	}
	if len(d.b) != 0 {
		return rec, fmt.Errorf("runstore: %d trailing bytes after record type %d", len(d.b), t)
	}
	return rec, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

var errTruncated = errors.New("runstore: truncated record payload")

// dec is a strict cursor over a record payload.
type dec struct{ b []byte }

func (d *dec) u8() (byte, error) {
	if len(d.b) == 0 {
		return 0, errTruncated
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, errTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, errTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

// rangedVarint decodes a signed field and rejects values outside
// [lo, hi] — a bit flip must not silently reinterpret a sample.
func (d *dec) rangedVarint(lo, hi int64) (int64, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("runstore: field value %d outside [%d,%d]", v, lo, hi)
	}
	return v, nil
}

// uvarint8 decodes an unsigned field that must fit a byte.
func (d *dec) uvarint8() (byte, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint8 {
		return 0, fmt.Errorf("runstore: field value %d overflows uint8", v)
	}
	return byte(v), nil
}

// count decodes a non-negative int-sized field (sequence numbers,
// lengths, phase IDs).
func (d *dec) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("runstore: count %d overflows", v)
	}
	return int(v), nil
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n > len(d.b) {
		return nil, errTruncated
	}
	if n == 0 {
		return nil, nil
	}
	p := make([]byte, n)
	copy(p, d.b)
	d.b = d.b[n:]
	return p, nil
}

func (d *dec) str() (string, error) {
	p, err := d.bytes()
	return string(p), err
}
