package runstore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"geoblock/internal/geo"
	"geoblock/internal/scanner"
)

var update = flag.Bool("update", false, "rewrite the golden segment file")

// sampleRecords returns one record of every type, with every field
// populated (including negative and boundary values), in the order a
// real journal would carry them.
func sampleRecords() []Record {
	return []Record{
		{Type: recPhaseBegin, Key: "top10k-initial", Name: "top10k-initial", Fingerprint: 0xdeadbeefcafef00d},
		{Type: recSample, Phase: 0, Sample: scanner.Sample{
			Domain: 7, Country: -1, Attempt: 2, Err: 3, Status: 403,
			BodyLen: 1234, ExitIP: 0xc0a80001, Seed: 99, Body: "<html>403 Forbidden</html>",
		}},
		{Type: recSample, Phase: 0, Sample: scanner.Sample{
			Domain: -5, Country: 176, Status: -1, BodyLen: -1, Seed: 1,
		}},
		{Type: recCheckpoint, Phase: 0, Checkpoint: Checkpoint{
			Seq: 0, Country: "IR", Tasks: 40, Samples: 120, Lost: 2,
			Metrics: []byte(`{"counters":[{"name":"x","value":1}]}`),
		}},
		{Type: recCheckpoint, Phase: 0, Checkpoint: Checkpoint{Seq: 1, Country: "US", Tasks: 1, Samples: 3}},
		{Type: recOutage, Phase: 0, Outage: scanner.Outage{
			Country: "SY", Reason: 1, Shards: 2, ShardsTotal: 4, Tasks: 80,
		}},
		{Type: recCoverage, Phase: 0, Coverage: scanner.Coverage{
			Requested: 177, Attained: 175, Lost: []geo.CountryCode{"KP", "SY"}, TasksLost: 160,
		}},
		{Type: recPhaseDone, Phase: 0},
	}
}

// TestRecordRoundtrip pins the codec contract: every record type
// decodes back to exactly what was encoded.
func TestRecordRoundtrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		payload := encodeRecord(rec)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d (type %d): decode: %v", i, rec.Type, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d (type %d) did not roundtrip:\nenc %+v\ndec %+v", i, rec.Type, rec, got)
		}
	}
}

// TestDecodeRejectsCorruption spot-checks the strict-decoder promises:
// unknown types, truncations, out-of-range fields, and trailing bytes
// all error instead of rounding into a plausible record.
func TestDecodeRejectsCorruption(t *testing.T) {
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("empty payload decoded")
	}
	if _, err := DecodeRecord([]byte{200}); err == nil {
		t.Error("unknown type 200 decoded")
	}
	valid := encodeRecord(sampleRecords()[1])
	for cut := 1; cut < len(valid); cut++ {
		if _, err := DecodeRecord(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", cut, len(valid))
		}
	}
	if _, err := DecodeRecord(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A status outside int16 must not wrap into a real-looking one.
	big := encodeRecord(Record{Type: recSample, Sample: scanner.Sample{Status: 32767}})
	ok := encodeRecord(Record{Type: recSample, Sample: scanner.Sample{Status: 1}})
	if len(big) <= len(ok) {
		t.Skip("encoding layout changed; range probe no longer valid")
	}
	if _, err := DecodeRecord(big); err != nil {
		t.Fatalf("boundary status rejected: %v", err)
	}
}

// TestGoldenSegment freezes the on-disk bytes: the fixed record
// sequence above must frame to exactly testdata/golden.seg, and Open
// must recover a directory holding only that file (no manifest — the
// glob fallback). If this test fails after an intentional codec change,
// bump segMagic: old journals are no longer readable.
func TestGoldenSegment(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	for _, rec := range sampleRecords() {
		buf.Write(frame(encodeRecord(rec)))
	}
	golden := filepath.Join("testdata", "golden.seg")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("segment encoding changed: got %d bytes, golden %d bytes — old journals would be unreadable", buf.Len(), len(want))
	}

	// The golden journal must stay openable and fully indexed.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), want, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("golden journal no longer opens: %v", err)
	}
	defer st.Close()
	info, ok := st.Phase("top10k-initial")
	if !ok {
		t.Fatal("golden journal lost its phase")
	}
	if !info.Done || info.Shards != 2 || info.Samples != 123 {
		t.Fatalf("golden phase = %+v, want done with 2 shards / 123 samples", info)
	}
}
