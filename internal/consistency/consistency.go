// Package consistency implements the paper's resampling methodology:
// the 80% agreement threshold that turns noisy block-page observations
// into confirmed geoblocking (§4.1.4), the per-domain consistency score
// used to separate geoblocking from bot defenses on the non-explicit
// CDNs (§5.2.2), and the subsampling machinery behind Figures 1 and 3.
package consistency

import (
	"geoblock/internal/stats"
)

// DefaultThreshold is the paper's agreement cut: a (domain, country)
// pair counts as geoblocked when at least 80% of its samples returned
// the block page.
const DefaultThreshold = 0.80

// Rate summarizes the observations of one (domain, country) pair.
type Rate struct {
	// Responses is the number of samples that returned any HTTP
	// response (errors are excluded from the denominator).
	Responses int
	// Blocks is how many of them were the block page under test.
	Blocks int
}

// Frac returns Blocks/Responses (0 when nothing responded).
func (r Rate) Frac() float64 {
	if r.Responses == 0 {
		return 0
	}
	return float64(r.Blocks) / float64(r.Responses)
}

// Confirmed applies the agreement threshold.
func (r Rate) Confirmed(threshold float64) bool {
	return r.Responses > 0 && r.Frac() >= threshold
}

// DomainConsistency computes the §5.2.2 score for one domain: among
// the countries that saw the block page at least once, the fraction
// whose block rate meets the threshold. The paper's example: two
// countries at 100% and the rest at zero scores 1.0; three countries
// at 90% plus one at 20% scores 0.75.
func DomainConsistency(perCountry map[string]Rate, threshold float64) (score float64, countriesSeen int) {
	consistent := 0
	for _, r := range perCountry {
		if r.Blocks == 0 {
			continue
		}
		countriesSeen++
		if r.Frac() >= threshold {
			consistent++
		}
	}
	if countriesSeen == 0 {
		return 0, 0
	}
	return float64(consistent) / float64(countriesSeen), countriesSeen
}

// BlockedEverywhere reports whether every responding country saw the
// block page at its full rate — the §5.2.2 exclusion for domains that
// block all countries (those are bot defenses against the platform,
// not geoblocking).
func BlockedEverywhere(perCountry map[string]Rate, threshold float64) bool {
	any := false
	for _, r := range perCountry {
		if r.Responses == 0 {
			continue
		}
		any = true
		if r.Frac() < threshold {
			return false
		}
	}
	return any
}

// SubsampleBlockRates draws `draws` random combinations of size k from
// a pair's observation vector and returns each combination's block
// fraction — the machinery of Figure 1 (consistency for various sample
// rates).
func SubsampleBlockRates(blocks []bool, k, draws int, rng *stats.RNG) []float64 {
	if k > len(blocks) {
		k = len(blocks)
	}
	out := make([]float64, 0, draws)
	for i := 0; i < draws; i++ {
		idx := rng.SampleInts(len(blocks), k)
		hit := 0
		for _, j := range idx {
			if blocks[j] {
				hit++
			}
		}
		out = append(out, float64(hit)/float64(k))
	}
	return out
}

// FalseNegativeRate draws `draws` combinations of size k and returns
// the fraction containing no block observation at all — Figure 3 (the
// risk of missing a geoblocker entirely at small sample sizes).
func FalseNegativeRate(blocks []bool, k, draws int, rng *stats.RNG) float64 {
	if k > len(blocks) {
		k = len(blocks)
	}
	misses := 0
	for i := 0; i < draws; i++ {
		idx := rng.SampleInts(len(blocks), k)
		hit := false
		for _, j := range idx {
			if blocks[j] {
				hit = true
				break
			}
		}
		if !hit {
			misses++
		}
	}
	return float64(misses) / float64(draws)
}
