package consistency_test

import (
	"fmt"

	"geoblock/internal/consistency"
)

// The §5.2.2 consistency score separates geoblocking from bot noise on
// the CDNs whose block page is ambiguous.
func ExampleDomainConsistency() {
	// A true geoblocker: two countries always blocked, the rest clean.
	geoblocker := map[string]consistency.Rate{
		"IR": {Responses: 20, Blocks: 20},
		"SY": {Responses: 20, Blocks: 20},
		"US": {Responses: 20, Blocks: 0},
		"DE": {Responses: 20, Blocks: 0},
	}
	score, seen := consistency.DomainConsistency(geoblocker, consistency.DefaultThreshold)
	fmt.Printf("geoblocker: score %.2f over %d countries\n", score, seen)

	// A bot-defense deployment: the page shows up sporadically
	// everywhere — never consistently.
	botDefense := map[string]consistency.Rate{
		"IR": {Responses: 20, Blocks: 5},
		"US": {Responses: 20, Blocks: 3},
		"DE": {Responses: 20, Blocks: 4},
	}
	score, seen = consistency.DomainConsistency(botDefense, consistency.DefaultThreshold)
	fmt.Printf("bot defense: score %.2f over %d countries\n", score, seen)
	// Output:
	// geoblocker: score 1.00 over 2 countries
	// bot defense: score 0.00 over 3 countries
}
