package consistency

import (
	"math"
	"testing"

	"geoblock/internal/stats"
)

func TestRateFrac(t *testing.T) {
	if (Rate{}).Frac() != 0 {
		t.Fatal("empty rate should be 0")
	}
	if got := (Rate{Responses: 20, Blocks: 17}).Frac(); got != 0.85 {
		t.Fatalf("frac = %v", got)
	}
}

func TestConfirmedThreshold(t *testing.T) {
	cases := []struct {
		r    Rate
		want bool
	}{
		{Rate{Responses: 23, Blocks: 19}, true},  // 82.6%
		{Rate{Responses: 23, Blocks: 18}, false}, // 78.3%
		{Rate{Responses: 10, Blocks: 8}, true},   // exactly 80%
		{Rate{Responses: 0, Blocks: 0}, false},
	}
	for _, tc := range cases {
		if got := tc.r.Confirmed(DefaultThreshold); got != tc.want {
			t.Errorf("Confirmed(%+v) = %v", tc.r, got)
		}
	}
}

func TestDomainConsistencyPaperExamples(t *testing.T) {
	// Two countries blocked 100%, rest never → 100%.
	perCountry := map[string]Rate{
		"IR": {Responses: 20, Blocks: 20},
		"SY": {Responses: 20, Blocks: 20},
		"US": {Responses: 20, Blocks: 0},
		"DE": {Responses: 20, Blocks: 0},
	}
	score, seen := DomainConsistency(perCountry, DefaultThreshold)
	if score != 1.0 || seen != 2 {
		t.Fatalf("example 1: score=%v seen=%d", score, seen)
	}

	// Three countries at 90%, one at 20% → 75%.
	perCountry = map[string]Rate{
		"IR": {Responses: 20, Blocks: 18},
		"SY": {Responses: 20, Blocks: 18},
		"SD": {Responses: 20, Blocks: 18},
		"RU": {Responses: 20, Blocks: 4},
		"US": {Responses: 20, Blocks: 0},
	}
	score, seen = DomainConsistency(perCountry, DefaultThreshold)
	if score != 0.75 || seen != 4 {
		t.Fatalf("example 2: score=%v seen=%d", score, seen)
	}
}

func TestDomainConsistencyEmpty(t *testing.T) {
	score, seen := DomainConsistency(map[string]Rate{"US": {Responses: 5}}, DefaultThreshold)
	if score != 0 || seen != 0 {
		t.Fatalf("score=%v seen=%d", score, seen)
	}
}

func TestBlockedEverywhere(t *testing.T) {
	all := map[string]Rate{
		"US": {Responses: 20, Blocks: 20},
		"DE": {Responses: 20, Blocks: 19},
	}
	if !BlockedEverywhere(all, DefaultThreshold) {
		t.Fatal("fully blocked domain should report true")
	}
	some := map[string]Rate{
		"US": {Responses: 20, Blocks: 20},
		"DE": {Responses: 20, Blocks: 0},
	}
	if BlockedEverywhere(some, DefaultThreshold) {
		t.Fatal("partially blocked domain should report false")
	}
	if BlockedEverywhere(map[string]Rate{}, DefaultThreshold) {
		t.Fatal("empty map should be false")
	}
}

func fullBlocks(n int, rate float64, rng *stats.RNG) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Bool(rate)
	}
	return out
}

func TestSubsampleBlockRates(t *testing.T) {
	rng := stats.NewRNG(1)
	blocks := fullBlocks(100, 0.9, rng)
	rates := SubsampleBlockRates(blocks, 20, 500, rng)
	if len(rates) != 500 {
		t.Fatalf("draws = %d", len(rates))
	}
	mean := stats.Mean(rates)
	trueRate := 0.0
	for _, b := range blocks {
		if b {
			trueRate++
		}
	}
	trueRate /= 100
	if math.Abs(mean-trueRate) > 0.05 {
		t.Fatalf("subsample mean %v far from true rate %v", mean, trueRate)
	}
}

func TestSubsampleSizeClamped(t *testing.T) {
	rng := stats.NewRNG(2)
	blocks := []bool{true, false, true}
	rates := SubsampleBlockRates(blocks, 10, 50, rng)
	for _, r := range rates {
		if math.Abs(r-2.0/3.0) > 1e-9 {
			t.Fatalf("clamped draw should use all samples: %v", r)
		}
	}
}

func TestFalseNegativeRateDropsWithSampleSize(t *testing.T) {
	rng := stats.NewRNG(3)
	// A pair whose block page shows 90% of the time (proxy noise hides
	// the rest).
	blocks := fullBlocks(100, 0.9, rng)
	prev := 1.0
	for _, k := range []int{1, 3, 10, 20} {
		fn := FalseNegativeRate(blocks, k, 500, rng)
		if fn > prev+0.02 {
			t.Fatalf("false negatives should shrink with k: k=%d fn=%v prev=%v", k, fn, prev)
		}
		prev = fn
	}
	if prev > 0.01 {
		t.Fatalf("20 samples should essentially never miss: %v", prev)
	}
}

func TestFalseNegativeAllBlocked(t *testing.T) {
	rng := stats.NewRNG(4)
	blocks := fullBlocks(50, 1.0, rng)
	if fn := FalseNegativeRate(blocks, 1, 100, rng); fn != 0 {
		t.Fatalf("always-blocked pair missed: %v", fn)
	}
}
