// Package vnet is the virtual network layer: it connects a client
// address to the simulated web through a standard http.RoundTripper, so
// the measurement tooling above it runs on an ordinary *http.Client
// with real redirect handling, header canonicalization and error
// semantics.
//
// The stack performs DNS resolution against the world, applies national
// censorship in-path (resets, poisoned DNS, injected block pages,
// timeouts), and hands surviving requests to the CDN edge. Timeouts are
// simulated — the errors satisfy net.Error with Timeout() == true but
// return immediately, keeping million-request studies fast.
package vnet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"geoblock/internal/blockpage"
	"geoblock/internal/cdn"
	"geoblock/internal/censor"
	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/worldgen"
)

// OpError is the network-level failure type. It satisfies net.Error.
type OpError struct {
	Op      string // "dial", "dns", "read"
	Host    string
	Msg     string
	timeout bool
}

// TimeoutError builds an OpError that reports Timeout() == true — for
// layers outside this package that simulate dropped connections.
func TimeoutError(op, host string) *OpError {
	return &OpError{Op: op, Host: host, Msg: "i/o timeout", timeout: true}
}

func (e *OpError) Error() string   { return fmt.Sprintf("%s %s: %s", e.Op, e.Host, e.Msg) }
func (e *OpError) Timeout() bool   { return e.timeout }
func (e *OpError) Temporary() bool { return true }

// Stack is one client's network stack: a source address plus the world
// it is plugged into. It implements http.RoundTripper and is safe for
// concurrent use.
type Stack struct {
	World *worldgen.World
	IP    geo.IP
}

// NewStack returns a stack sourcing traffic from ip.
func NewStack(w *worldgen.World, ip geo.IP) *Stack {
	return &Stack{World: w, IP: ip}
}

// Client returns an *http.Client that routes through the stack,
// following up to maxRedirects redirects (the paper's tooling used 10).
func (s *Stack) Client(maxRedirects int) *http.Client {
	return &http.Client{
		Transport: s,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			if len(via) >= maxRedirects {
				return fmt.Errorf("stopped after %d redirects", maxRedirects)
			}
			return nil
		},
	}
}

type seedKey struct{}

// WithSampleSeed attaches the deterministic per-sample seed to ctx. The
// scanner sets it so that a (domain, vantage, sample-index) triple
// always reproduces the identical response — the property that lets
// the pipeline re-fetch a sample's body instead of storing terabytes.
func WithSampleSeed(ctx context.Context, seed uint64) context.Context {
	return context.WithValue(ctx, seedKey{}, seed)
}

// SampleSeed extracts the seed; absent seeds derive from the request
// itself (still deterministic per URL+IP, but shared across repeats).
func SampleSeed(ctx context.Context) (uint64, bool) {
	v, ok := ctx.Value(seedKey{}).(uint64)
	return v, ok
}

// RoundTrip implements http.RoundTripper over the simulated Internet.
func (s *Stack) RoundTrip(req *http.Request) (*http.Response, error) {
	host := strings.ToLower(req.URL.Hostname())
	lookupHost := strings.TrimPrefix(host, "www.")

	seed, ok := SampleSeed(req.Context())
	if !ok {
		seed = stats.Mix64(hash(host) ^ uint64(s.IP))
	}

	loc, _ := s.World.Geo.Locate(s.IP)

	d, found := s.World.Lookup(lookupHost)

	// National censorship sits between the client and everything else;
	// DNS poisoning fires even for domains that would not resolve.
	if found {
		switch censor.Check(d, loc) {
		case censor.RST:
			return nil, &OpError{Op: "read", Host: host, Msg: "connection reset by peer"}
		case censor.DNSPoison:
			return nil, &OpError{Op: "dns", Host: host, Msg: "poisoned answer: connection refused"}
		case censor.Timeout:
			return nil, &OpError{Op: "dial", Host: host, Msg: "i/o timeout", timeout: true}
		case censor.BlockPage:
			return s.censorPage(req, d, seed)
		}
	}

	if !found {
		return nil, &OpError{Op: "dns", Host: host, Msg: "no such host"}
	}
	if d.Unreachable {
		return nil, &OpError{Op: "dial", Host: host, Msg: "i/o timeout", timeout: true}
	}

	// Timeout geoblocking (§7.3): the origin silently drops connections
	// from blocked countries — indistinguishable on the wire from an
	// outage or censorship, which is exactly what makes it hard to
	// attribute.
	if d.TimeoutBlockedIn(loc) {
		return nil, &OpError{Op: "dial", Host: host, Msg: "i/o timeout", timeout: true}
	}

	resp := cdn.Serve(s.World, cdn.Request{
		Domain:     d,
		Host:       host,
		Path:       req.URL.Path,
		Method:     req.Method,
		Scheme:     req.URL.Scheme,
		ClientIP:   s.IP,
		Header:     req.Header,
		Clock:      s.World.Clock(),
		SampleSeed: seed,
	})
	return toHTTP(req, resp), nil
}

// censorPage injects the national filter's block page.
func (s *Stack) censorPage(req *http.Request, d *worldgen.Domain, seed uint64) (*http.Response, error) {
	rng := stats.NewRNG(seed)
	body := blockpage.Render(blockpage.Censorship, blockpage.Vars{
		Domain:   d.Name,
		ClientIP: s.IP.String(),
		Nonce:    fmt.Sprintf("%06x", uint32(rng.Uint64())),
	})
	h := make(http.Header)
	h.Set("Content-Type", "text/html; charset=windows-1256")
	h.Set("Content-Length", fmt.Sprintf("%d", len(body)))
	return &http.Response{
		Status:        "403 Forbidden",
		StatusCode:    403,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		ContentLength: int64(len(body)),
		Body:          newLazyBody(func() string { return body }),
		Request:       req,
	}, nil
}

// toHTTP converts an edge response into a standard *http.Response with
// a lazily rendered body. HEAD responses carry no body, per HTTP
// semantics, but keep Content-Length.
func toHTTP(req *http.Request, r cdn.Response) *http.Response {
	resp := &http.Response{
		Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
		StatusCode:    r.Status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        r.Header,
		ContentLength: int64(r.BodyLen),
		Request:       req,
	}
	if req.Method == http.MethodHead {
		resp.Body = http.NoBody
		return resp
	}
	resp.Body = newLazyBody(r.Body)
	return resp
}

// lazyBody renders the page on first Read; responses whose bodies are
// never read (length-only scans) cost nothing.
type lazyBody struct {
	render func() string
	r      *strings.Reader
}

func newLazyBody(render func() string) io.ReadCloser {
	return &lazyBody{render: render}
}

func (b *lazyBody) Read(p []byte) (int, error) {
	if b.r == nil {
		b.r = strings.NewReader(b.render())
	}
	return b.r.Read(p)
}

func (b *lazyBody) Close() error { return nil }

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
