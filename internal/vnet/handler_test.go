package vnet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geoblock/internal/blockpage"
)

func TestHandlerServesBlockPages(t *testing.T) {
	srv := httptest.NewServer(Handler(testWorld))
	defer srv.Close()

	get := func(host, from string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/?host=" + host + "&from=" + from)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Airbnb's policy page from Iran.
	status, body := get("airbnb.fr", "IR")
	if status != 403 || !blockpage.Matches(blockpage.Airbnb, body) {
		t.Fatalf("airbnb.fr from IR: status %d", status)
	}

	// Same site from Germany serves content (majority across the
	// handler's single deterministic seed — one fetch suffices since
	// the seed is stable).
	status, body = get("airbnb.fr", "DE")
	if status != 200 {
		t.Fatalf("airbnb.fr from DE: status %d body %.80s", status, body)
	}

	// Crimea granularity.
	status, body = get("geniusdisplay.com", "crimea")
	if status != 403 || !blockpage.Matches(blockpage.AppEngine, body) {
		t.Fatalf("geniusdisplay from Crimea: status %d", status)
	}

	// Unknown host.
	status, _ = get("nope.invalid", "US")
	if status != http.StatusBadGateway {
		t.Fatalf("unknown host: status %d", status)
	}

	// Unknown country.
	status, _ = get("airbnb.fr", "ZZ")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown country: status %d", status)
	}
}

func TestHandlerHostHeaderFallback(t *testing.T) {
	h := Handler(testWorld)
	req := httptest.NewRequest("GET", "http://airbnb.fr/?from=SY", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 403 {
		t.Fatalf("host-header routing: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "Airbnb is not available") {
		t.Fatal("wrong page body")
	}
}

func TestHandlerHEAD(t *testing.T) {
	h := Handler(testWorld)
	req := httptest.NewRequest("HEAD", "http://airbnb.fr/?from=IR", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 403 {
		t.Fatalf("HEAD status %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatal("HEAD must not carry a body")
	}
}
