package vnet

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/worldgen"
)

var testWorld = worldgen.Generate(worldgen.TestConfig())

func stackIn(t *testing.T, cc geo.CountryCode) *Stack {
	t.Helper()
	ip, err := testWorld.Geo.HostIP(cc, 7)
	if err != nil {
		t.Fatal(err)
	}
	return NewStack(testWorld, ip)
}

func browserGet(t *testing.T, s *Stack, url string, seed uint64) (*http.Response, []byte, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(WithSampleSeed(context.Background(), seed), "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("User-Agent", "Mozilla/5.0 (Macintosh) Firefox/61.0")
	req.Header.Set("Accept", "text/html")
	req.Header.Set("Accept-Language", "en-US")
	resp, err := s.Client(10).Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}

func plainDomain(t *testing.T) *worldgen.Domain {
	t.Helper()
	for _, d := range testWorld.Top10K() {
		if len(d.GeoRules) == 0 && !d.AirbnbStyle && !d.GAEHosted && !d.Unreachable &&
			!d.LuminatiRestricted && !d.RedirectLoop && d.ResidentialChallengeRate == 0 &&
			d.BotSensitivity < 0.1 && len(d.CensoredIn) == 0 {
			return d
		}
	}
	t.Fatal("no plain domain found")
	return nil
}

func TestFetchThroughRealHTTPClient(t *testing.T) {
	d := plainDomain(t)
	s := stackIn(t, "US")
	resp, body, err := browserGet(t, s, "http://"+d.Name+"/", 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if int64(len(body)) != resp.ContentLength && resp.ContentLength > 0 {
		// ContentLength reflects the final hop.
		t.Fatalf("body %d bytes, Content-Length %d", len(body), resp.ContentLength)
	}
	if !strings.Contains(string(body), d.Name) {
		t.Fatal("origin body missing domain name")
	}
}

func TestRedirectsFollowed(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.RedirectHops == 2 && len(cand.GeoRules) == 0 && !cand.GAEHosted &&
			!cand.AirbnbStyle && len(cand.CensoredIn) == 0 && cand.ResidentialChallengeRate == 0 {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no 2-hop domain")
	}
	s := stackIn(t, "US")
	resp, _, err := browserGet(t, s, "http://"+d.Name+"/", 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Request.URL.String(); got != "https://www."+d.Name+"/" {
		t.Fatalf("final URL %q", got)
	}
}

func TestUnknownHostDNSError(t *testing.T) {
	s := stackIn(t, "US")
	_, _, err := browserGet(t, s, "http://no-such-host.invalid/", 1)
	if err == nil || !strings.Contains(err.Error(), "no such host") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnreachableTimesOut(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.Unreachable {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no unreachable domain")
	}
	s := stackIn(t, "US")
	_, _, err := browserGet(t, s, "http://"+d.Name+"/", 1)
	if err == nil {
		t.Fatal("expected timeout")
	}
	var ne net.Error
	if !asNetError(err, &ne) || !ne.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}
}

func asNetError(err error, target *net.Error) bool {
	for err != nil {
		if ne, ok := err.(net.Error); ok {
			*target = ne
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestCensorshipBlockPage(t *testing.T) {
	// Find a domain censored with a block page somewhere.
	var d *worldgen.Domain
	var cc geo.CountryCode
	for _, cand := range testWorld.Top10K() {
		for c := range cand.CensoredIn {
			dd := cand
			if mech := checkMech(dd, c); mech == "blockpage" && !cand.Unreachable {
				d, cc = cand, c
				break
			}
		}
		if d != nil {
			break
		}
	}
	if d == nil {
		t.Skip("no blockpage-censored domain")
	}
	s := stackIn(t, cc)
	resp, body, err := browserGet(t, s, "http://"+d.Name+"/", 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 403 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !blockpage.Matches(blockpage.Censorship, string(body)) {
		t.Fatal("expected the censorship page")
	}
}

func checkMech(d *worldgen.Domain, cc geo.CountryCode) string {
	s := NewStack(testWorld, 0)
	_ = s
	// Reuse the censor package through the stack indirectly: simpler to
	// call it via a tiny HTTP request would hide the mechanism, so this
	// helper duplicates the classification by probing.
	ip, err := testWorld.Geo.HostIP(cc, 7)
	if err != nil {
		return "none"
	}
	st := NewStack(testWorld, ip)
	req, _ := http.NewRequest("GET", "http://"+d.Name+"/", nil)
	resp, err := st.RoundTrip(req)
	if err != nil {
		return "error"
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if blockpage.Matches(blockpage.Censorship, string(b)) {
		return "blockpage"
	}
	return "other"
}

func TestSampleSeedDeterminism(t *testing.T) {
	d := plainDomain(t)
	s := stackIn(t, "FR")
	_, b1, err := browserGet(t, s, "http://"+d.Name+"/", 42)
	if err != nil {
		t.Fatal(err)
	}
	_, b2, err := browserGet(t, s, "http://"+d.Name+"/", 42)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("same seed must reproduce the same body")
	}
	_, b3, err := browserGet(t, s, "http://"+d.Name+"/", 43)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) == string(b3) {
		t.Fatal("different seeds should vary dynamic content")
	}
}

func TestHeadRequestSkipsBody(t *testing.T) {
	d := plainDomain(t)
	s := stackIn(t, "US")
	req, _ := http.NewRequest("HEAD", "https://www."+d.Name+"/", nil)
	resp, err := s.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength <= 0 {
		t.Fatal("HEAD should still advertise Content-Length")
	}
	b, _ := io.ReadAll(resp.Body)
	if len(b) != 0 {
		t.Fatal("HEAD must not carry a body")
	}
}

func TestContentLengthMatchesBody(t *testing.T) {
	d := plainDomain(t)
	s := stackIn(t, "JP")
	for seed := uint64(0); seed < 10; seed++ {
		resp, body, err := browserGet(t, s, "https://www."+d.Name+"/", seed)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if int(resp.ContentLength) != len(body) {
			t.Fatalf("seed %d: Content-Length %d but body %d bytes", seed, resp.ContentLength, len(body))
		}
	}
}

func TestRedirectLoopStops(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.RedirectLoop {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no redirect-loop domain at this scale")
	}
	s := stackIn(t, "US")
	_, _, err := browserGet(t, s, "http://"+d.Name+"/a", 1)
	if err == nil || !strings.Contains(err.Error(), "redirects") {
		t.Fatalf("want redirect-limit error, got %v", err)
	}
}

func TestDNSResolver(t *testing.T) {
	r := &Resolver{World: testWorld}
	d := testWorld.Top10K()[0]
	if _, ok := r.LookupA(d.Name); !ok {
		t.Fatal("A lookup failed")
	}
	if _, ok := r.LookupA("www." + d.Name); !ok {
		t.Fatal("www A lookup failed")
	}
	if _, ok := r.LookupA("missing.invalid"); ok {
		t.Fatal("NXDOMAIN expected")
	}

	txts := r.LookupTXT(GoogleNetblockRoot)
	if len(txts) != 1 {
		t.Fatal("netblock root TXT missing")
	}
	includes, cidrs := ParseSPF(txts[0])
	if len(includes) != 4 || len(cidrs) != 0 {
		t.Fatalf("root record: %d includes, %d cidrs", len(includes), len(cidrs))
	}
	var all []geo.Range
	for _, inc := range includes {
		sub := r.LookupTXT(inc)
		if len(sub) != 1 {
			t.Fatalf("missing TXT for %s", inc)
		}
		_, subCIDRs := ParseSPF(sub[0])
		for _, c := range subCIDRs {
			rng, err := ParseCIDR(c)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rng)
		}
	}
	want := worldgen.GAENetblocks()
	if len(all) != len(want) {
		t.Fatalf("netblock walk found %d blocks, want %d", len(all), len(want))
	}
	for i := range want {
		if all[i] != (geo.Range{Lo: want[i].Lo, Hi: want[i].Hi}) {
			t.Fatalf("block %d mismatch: %+v vs %+v", i, all[i], want[i])
		}
	}
}

func TestParseCIDRErrors(t *testing.T) {
	for _, bad := range []string{"1.2.3.4", "a.b.c.d/16", "1.2.3.4/2", "1.2.3.4/40"} {
		if _, err := ParseCIDR(bad); err == nil {
			t.Errorf("ParseCIDR(%q) should fail", bad)
		}
	}
	r, err := ParseCIDR("10.0.0.0/16")
	if err != nil || r.Hi-r.Lo != 1<<16 {
		t.Fatalf("ParseCIDR(/16) = %+v, %v", r, err)
	}
}

func TestOpError(t *testing.T) {
	e := &OpError{Op: "dial", Host: "x.com", Msg: "i/o timeout", timeout: true}
	if !e.Timeout() || !e.Temporary() {
		t.Fatal("timeout flags wrong")
	}
	if !strings.Contains(e.Error(), "x.com") {
		t.Fatal("error text missing host")
	}
}
