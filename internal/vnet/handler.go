package vnet

import (
	"net/http"
	"strings"

	"geoblock/internal/cdn"
	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/worldgen"
)

// Handler exposes the simulated web over a real HTTP listener, so the
// block pages can be browsed with curl or a browser (cmd/worldd). The
// requested site is addressed with the Host header (or a `host` query
// parameter for convenience), and the simulated client location with
// the `from` query parameter (a country code, or `crimea`):
//
//	curl 'http://localhost:8403/?host=airbnb.fr&from=IR'
func Handler(w *worldgen.World) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		host := req.URL.Query().Get("host")
		if host == "" {
			host = req.Host
			if i := strings.IndexByte(host, ':'); i >= 0 {
				host = host[:i]
			}
		}
		host = strings.TrimPrefix(strings.ToLower(host), "www.")

		d, ok := w.Lookup(host)
		if !ok {
			http.Error(rw, "no such domain in the simulated world: "+host, http.StatusBadGateway)
			return
		}

		ip, err := clientIP(w, req.URL.Query().Get("from"))
		if err != "" {
			http.Error(rw, err, http.StatusBadRequest)
			return
		}

		resp := cdn.Serve(w, cdn.Request{
			Domain:     d,
			Host:       host,
			Path:       req.URL.Path,
			Method:     req.Method,
			Scheme:     "https",
			ClientIP:   ip,
			Header:     req.Header,
			Clock:      w.Clock(),
			SampleSeed: stats.Mix64(uint64(ip) ^ hash(host)),
		})
		for k, vs := range resp.Header {
			for _, v := range vs {
				rw.Header().Add(k, v)
			}
		}
		rw.WriteHeader(resp.Status)
		if req.Method != http.MethodHead {
			_, _ = rw.Write([]byte(resp.Body()))
		}
	})
}

// clientIP mints a simulated source address in the requested location,
// defaulting to the United States.
func clientIP(w *worldgen.World, from string) (geo.IP, string) {
	switch strings.ToLower(from) {
	case "":
		from = "US"
	case "crimea":
		return w.Geo.CrimeaHostIP(1), ""
	}
	ip, err := w.Geo.HostIP(geo.CountryCode(strings.ToUpper(from)), 1)
	if err != nil {
		return 0, "unknown country code: " + from
	}
	return ip, ""
}
