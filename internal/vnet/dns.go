package vnet

import (
	"fmt"
	"strings"

	"geoblock/internal/geo"
	"geoblock/internal/worldgen"
)

// Resolver is the simulated DNS the discovery tooling queries: A
// records for domains, NS records for the DNS-based customer discovery
// of §3.1, and the SPF-style TXT tree Google publishes for App Engine
// netblock discovery (§5.1.1).
type Resolver struct {
	World *worldgen.World
}

// GoogleNetblockRoot is the name whose recursive TXT resolution yields
// the App Engine address blocks.
const GoogleNetblockRoot = "_cloud-netblocks.googleusercontent.example"

// LookupA resolves name to its IPv4 address; ok is false for NXDOMAIN.
func (r *Resolver) LookupA(name string) (geo.IP, bool) {
	return r.World.ResolveA(strings.TrimPrefix(strings.ToLower(name), "www."))
}

// LookupNS returns the authoritative nameservers for name.
func (r *Resolver) LookupNS(name string) []string {
	return r.World.NS(strings.TrimPrefix(strings.ToLower(name), "www."))
}

// LookupTXT returns TXT records. Only the Google netblock tree is
// populated: the root record includes four child records, each carrying
// ip4: terms for a quarter of the netblocks.
func (r *Resolver) LookupTXT(name string) []string {
	name = strings.ToLower(name)
	nets := worldgen.GAENetblocks()
	const children = 4
	per := (len(nets) + children - 1) / children

	if name == GoogleNetblockRoot {
		var b strings.Builder
		b.WriteString("v=spf1")
		for i := 0; i < children; i++ {
			fmt.Fprintf(&b, " include:_cloud-netblocks%d.googleusercontent.example", i+1)
		}
		b.WriteString(" ?all")
		return []string{b.String()}
	}

	for i := 0; i < children; i++ {
		if name != fmt.Sprintf("_cloud-netblocks%d.googleusercontent.example", i+1) {
			continue
		}
		var b strings.Builder
		b.WriteString("v=spf1")
		for j := i * per; j < (i+1)*per && j < len(nets); j++ {
			b.WriteString(" ip4:" + cidrOf(nets[j]))
		}
		b.WriteString(" ?all")
		return []string{b.String()}
	}
	return nil
}

// cidrOf formats a power-of-two aligned range as CIDR notation.
func cidrOf(r geo.Range) string {
	span := uint32(r.Hi - r.Lo)
	bits := 32
	for span > 1 {
		span >>= 1
		bits--
	}
	return fmt.Sprintf("%s/%d", r.Lo.Addr(), bits)
}

// ParseSPF extracts the include: targets and ip4: CIDR ranges from an
// SPF-style TXT record.
func ParseSPF(txt string) (includes []string, cidrs []string) {
	for _, f := range strings.Fields(txt) {
		switch {
		case strings.HasPrefix(f, "include:"):
			includes = append(includes, strings.TrimPrefix(f, "include:"))
		case strings.HasPrefix(f, "ip4:"):
			cidrs = append(cidrs, strings.TrimPrefix(f, "ip4:"))
		}
	}
	return includes, cidrs
}

// ParseCIDR converts "a.b.c.d/len" into a half-open range.
func ParseCIDR(s string) (geo.Range, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return geo.Range{}, fmt.Errorf("vnet: bad CIDR %q", s)
	}
	var a, b, c, d, bits int
	if _, err := fmt.Sscanf(s[:i], "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return geo.Range{}, fmt.Errorf("vnet: bad CIDR %q: %w", s, err)
	}
	if _, err := fmt.Sscanf(s[i+1:], "%d", &bits); err != nil || bits < 8 || bits > 32 {
		return geo.Range{}, fmt.Errorf("vnet: bad prefix length in %q", s)
	}
	lo := geo.IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
	span := geo.IP(1) << (32 - bits)
	return geo.Range{Lo: lo, Hi: lo + span}, nil
}
