// Package analysis turns pipeline output into the paper's tables and
// figures: structured rows ready for rendering, one builder per
// table/figure of the evaluation (see DESIGN.md's experiment index).
package analysis

import (
	"sort"

	"geoblock/internal/blockpage"
	"geoblock/internal/category"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/pipeline"
	"geoblock/internal/stats"
	"geoblock/internal/worldgen"
)

// Table1 is the pipeline-overview row: the data volume at each step of
// the discovery process.
type Table1 struct {
	InitialDomains      int
	SafeDomains         int
	InitialSamples      int // domain-country pairs sampled (paper: 1,416,531)
	ClusteredPages      int
	Clusters            int
	DiscoveredProviders int
}

// BuildTable1 summarizes the Top-10K discovery pipeline.
func BuildTable1(r *pipeline.Top10KResult) Table1 {
	return Table1{
		InitialDomains:      r.InitialCount,
		SafeDomains:         len(r.SafeDomains),
		InitialSamples:      len(r.SafeDomains) * len(r.Countries),
		ClusteredPages:      len(r.Outliers),
		Clusters:            len(r.Clusters),
		DiscoveredProviders: len(r.DiscoveredProviders()),
	}
}

// Table2Row is one line of the recall table.
type Table2Row struct {
	Kind     blockpage.Kind
	Recalled int
	Actual   int
}

// Recall returns the row's recall fraction.
func (r Table2Row) Recall() float64 {
	if r.Actual == 0 {
		return 0
	}
	return float64(r.Recalled) / float64(r.Actual)
}

// BuildTable2 assembles the length-heuristic recall table in the
// paper's row order, plus the totals row.
func BuildTable2(r *pipeline.Top10KResult) ([]Table2Row, Table2Row) {
	order := []blockpage.Kind{
		blockpage.Akamai, blockpage.Cloudflare, blockpage.AppEngine,
		blockpage.CloudflareCaptcha, blockpage.CloudflareJS,
		blockpage.CloudFront, blockpage.BaiduCaptcha, blockpage.Baidu,
		blockpage.Incapsula, blockpage.Soasta, blockpage.Airbnb,
		blockpage.DistilCaptcha, blockpage.Nginx, blockpage.Varnish,
	}
	var rows []Table2Row
	var total Table2Row
	for _, k := range order {
		row := Table2Row{Kind: k, Recalled: r.Recall[k].Recalled, Actual: r.Recall[k].Actual}
		rows = append(rows, row)
		total.Recalled += row.Recalled
		total.Actual += row.Actual
	}
	return rows, total
}

// CategoryCDNRow is one line of Table 3: unique geoblocked domains per
// category, split by CDN.
type CategoryCDNRow struct {
	Category category.Category
	PerKind  map[blockpage.Kind]int
	Total    int
}

// BuildTable3 counts unique geoblocked domains per (category, CDN).
func BuildTable3(w *worldgen.World, findings []pipeline.Finding) []CategoryCDNRow {
	type key struct {
		cat  category.Category
		kind blockpage.Kind
	}
	uniq := map[key]map[string]bool{}
	for _, f := range findings {
		d, ok := w.Lookup(f.DomainName)
		if !ok {
			continue
		}
		k := key{d.Category, f.Kind}
		if uniq[k] == nil {
			uniq[k] = map[string]bool{}
		}
		uniq[k][f.DomainName] = true
	}
	perCat := map[category.Category]*CategoryCDNRow{}
	for k, domains := range uniq {
		row := perCat[k.cat]
		if row == nil {
			row = &CategoryCDNRow{Category: k.cat, PerKind: map[blockpage.Kind]int{}}
			perCat[k.cat] = row
		}
		row.PerKind[k.kind] += len(domains)
		row.Total += len(domains)
	}
	rows := make([]CategoryCDNRow, 0, len(perCat))
	for _, row := range perCat {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Category < rows[j].Category
	})
	return rows
}

// CategoryRateRow is one line of Table 4 / Table 8: tested vs
// geoblocked domain counts per category.
type CategoryRateRow struct {
	Category   category.Category
	Tested     int
	Geoblocked int
}

// Rate returns the geoblocked fraction.
func (r CategoryRateRow) Rate() float64 {
	if r.Tested == 0 {
		return 0
	}
	return float64(r.Geoblocked) / float64(r.Tested)
}

// BuildCategoryRates computes tested/geoblocked per category for any
// study: testedNames is the probed population (responding domains);
// findings the confirmed instances.
func BuildCategoryRates(w *worldgen.World, testedNames []string, findings []pipeline.Finding) []CategoryRateRow {
	tested := map[category.Category]int{}
	for _, name := range testedNames {
		if d, ok := w.Lookup(name); ok {
			tested[d.Category]++
		}
	}
	blocked := map[category.Category]map[string]bool{}
	for _, f := range findings {
		d, ok := w.Lookup(f.DomainName)
		if !ok {
			continue
		}
		if blocked[d.Category] == nil {
			blocked[d.Category] = map[string]bool{}
		}
		blocked[d.Category][f.DomainName] = true
	}
	var rows []CategoryRateRow
	for cat, n := range tested {
		rows = append(rows, CategoryRateRow{Category: cat, Tested: n, Geoblocked: len(blocked[cat])})
	}
	sort.Slice(rows, func(i, j int) bool {
		ri, rj := rows[i].Rate(), rows[j].Rate()
		if ri != rj {
			return ri > rj
		}
		return rows[i].Category < rows[j].Category
	})
	return rows
}

// Table5 holds the TLD and country rankings of the Top-10K findings.
type Table5 struct {
	TLDs      []stats.KV // unique geoblocked domains per TLD
	Countries []stats.KV // geoblocking instances per country
}

// BuildTable5 ranks TLDs (by unique blocked domains) and countries (by
// instances).
func BuildTable5(w *worldgen.World, findings []pipeline.Finding) Table5 {
	tlds := stats.NewCounter()
	seenTLD := map[string]bool{}
	countries := stats.NewCounter()
	for _, f := range findings {
		countries.Inc(string(f.Country), 1)
		if !seenTLD[f.DomainName] {
			seenTLD[f.DomainName] = true
			if d, ok := w.Lookup(f.DomainName); ok {
				tlds.Inc("."+d.TLD, 1)
			}
		}
	}
	return Table5{TLDs: tlds.Sorted(), Countries: countries.Sorted()}
}

// CountryCDNRow is one line of Table 6/7: per-country instance counts
// split by CDN.
type CountryCDNRow struct {
	Country geo.CountryCode
	PerKind map[blockpage.Kind]int
	Total   int
}

// BuildCountryCDNTable computes the country × CDN instance matrix,
// sorted by total.
func BuildCountryCDNTable(findings []pipeline.Finding) []CountryCDNRow {
	perCountry := map[geo.CountryCode]*CountryCDNRow{}
	for _, f := range findings {
		row := perCountry[f.Country]
		if row == nil {
			row = &CountryCDNRow{Country: f.Country, PerKind: map[blockpage.Kind]int{}}
			perCountry[f.Country] = row
		}
		row.PerKind[f.Kind]++
		row.Total++
	}
	rows := make([]CountryCDNRow, 0, len(perCountry))
	for _, row := range perCountry {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Country < rows[j].Country
	})
	return rows
}

// ProviderRates summarizes §4.2.1 / §5.2.1: per CDN, how many customers
// were tested and how many geoblock somewhere.
type ProviderRates struct {
	Provider   worldgen.Provider
	Tested     int
	Geoblocked int
}

// Rate returns the fraction of customers that geoblock.
func (p ProviderRates) Rate() float64 {
	if p.Tested == 0 {
		return 0
	}
	return float64(p.Geoblocked) / float64(p.Tested)
}

// providerOfKind maps an explicit page kind back to its provider.
func providerOfKind(k blockpage.Kind) worldgen.Provider {
	switch k {
	case blockpage.Cloudflare:
		return worldgen.Cloudflare
	case blockpage.CloudFront:
		return worldgen.CloudFront
	case blockpage.AppEngine:
		return worldgen.AppEngine
	case blockpage.Baidu:
		return worldgen.Baidu
	default:
		return ""
	}
}

// BuildProviderRates computes per-provider geoblock rates given the
// tested population per provider.
func BuildProviderRates(tested map[worldgen.Provider]int, findings []pipeline.Finding) []ProviderRates {
	blocked := map[worldgen.Provider]map[string]bool{}
	for _, f := range findings {
		p := providerOfKind(f.Kind)
		if p == "" {
			continue
		}
		if blocked[p] == nil {
			blocked[p] = map[string]bool{}
		}
		blocked[p][f.DomainName] = true
	}
	var out []ProviderRates
	for _, p := range []worldgen.Provider{
		worldgen.Cloudflare, worldgen.CloudFront, worldgen.AppEngine,
		worldgen.Akamai, worldgen.Incapsula,
	} {
		if tested[p] == 0 && len(blocked[p]) == 0 {
			continue
		}
		out = append(out, ProviderRates{Provider: p, Tested: tested[p], Geoblocked: len(blocked[p])})
	}
	return out
}

// MedianBlockedPerCountry computes the median number of geoblocked
// domains per country, over the countries that observe any geoblocking
// (paper: median 3 in the Top 10K, 4 in the Top 1M — "most countries
// have at least a few domains preventing access by their residents").
func MedianBlockedPerCountry(findings []pipeline.Finding, countries []geo.CountryCode) float64 {
	perCountry := map[geo.CountryCode]map[string]bool{}
	for _, f := range findings {
		if perCountry[f.Country] == nil {
			perCountry[f.Country] = map[string]bool{}
		}
		perCountry[f.Country][f.DomainName] = true
	}
	counts := make([]int, 0, len(countries))
	for _, cc := range countries {
		if n := len(perCountry[cc]); n > 0 {
			counts = append(counts, n)
		}
	}
	if len(counts) == 0 {
		return 0
	}
	return stats.MedianInts(counts)
}

// RespondingDomains lists the tested domains that answered at least one
// sample — the denominators of Tables 4 and 8 ("Tested" counts only
// domains the study could actually reach).
func RespondingDomains(res *lumscan.Result) []string {
	ok := make([]bool, len(res.Domains))
	for i := range res.Samples {
		if res.Samples[i].OK() {
			ok[res.Samples[i].Domain] = true
		}
	}
	var out []string
	for i, name := range res.Domains {
		if ok[i] {
			out = append(out, name)
		}
	}
	return out
}

// ErrorStats summarizes scan reliability the way §4.1.1 and §5.1.3 do:
// the per-domain error-rate distribution and per-country response
// rates.
type ErrorStats struct {
	// P90DomainErrorRate: 90% of domains saw an error rate at or below
	// this (paper: 11.7% in the Top 10K, 3.0% in the Top 1M sample).
	P90DomainErrorRate float64
	// CountryResponseRates maps each country to the fraction of its
	// (domain, country) pairs with at least one valid response (paper:
	// 89.2%–93.9%, except Comoros at 76.4%).
	CountryResponseRates map[geo.CountryCode]float64
}

// BuildErrorStats computes the reliability summary from a scan.
func BuildErrorStats(res *lumscan.Result) ErrorStats {
	domainErr := make([]int, len(res.Domains))
	domainAll := make([]int, len(res.Domains))
	type pairIdx struct {
		d int32
		c int16
	}
	pairOK := map[pairIdx]bool{}
	pairSeen := map[pairIdx]bool{}
	for i := range res.Samples {
		s := &res.Samples[i]
		domainAll[s.Domain]++
		if !s.OK() {
			domainErr[s.Domain]++
		}
		key := pairIdx{s.Domain, s.Country}
		pairSeen[key] = true
		if s.OK() {
			pairOK[key] = true
		}
	}

	rates := make([]float64, 0, len(res.Domains))
	for i := range res.Domains {
		if domainAll[i] == 0 {
			continue
		}
		rates = append(rates, float64(domainErr[i])/float64(domainAll[i]))
	}
	out := ErrorStats{CountryResponseRates: map[geo.CountryCode]float64{}}
	if len(rates) > 0 {
		c := stats.NewCDF(rates...)
		out.P90DomainErrorRate = c.Quantile(0.9)
	}

	perCountrySeen := map[int16]int{}
	perCountryOK := map[int16]int{}
	for key := range pairSeen {
		perCountrySeen[key.c]++
		if pairOK[key] {
			perCountryOK[key.c]++
		}
	}
	for ci, seen := range perCountrySeen {
		if seen == 0 {
			continue
		}
		out.CountryResponseRates[res.Countries[ci]] = float64(perCountryOK[ci]) / float64(seen)
	}
	return out
}
