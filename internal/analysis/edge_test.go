package analysis

import (
	"testing"

	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/pipeline"
	"geoblock/internal/worldgen"
)

func TestBuildersOnEmptyFindings(t *testing.T) {
	w := worldgen.Generate(func() worldgen.Config {
		c := worldgen.TestConfig()
		c.Scale = 0.02
		return c
	}())
	var none []pipeline.Finding

	if rows := BuildTable3(w, none); len(rows) != 0 {
		t.Fatalf("table 3 on empty: %v", rows)
	}
	t5 := BuildTable5(w, none)
	if len(t5.TLDs) != 0 || len(t5.Countries) != 0 {
		t.Fatal("table 5 on empty should be empty")
	}
	if rows := BuildCountryCDNTable(none); len(rows) != 0 {
		t.Fatal("country table on empty should be empty")
	}
	if m := MedianBlockedPerCountry(none, w.Geo.Measurable()); m != 0 {
		t.Fatalf("median on empty = %v", m)
	}
	rates := BuildProviderRates(map[worldgen.Provider]int{worldgen.Cloudflare: 10}, none)
	for _, r := range rates {
		if r.Geoblocked != 0 {
			t.Fatal("phantom geoblockers")
		}
	}
}

func TestProviderRateZeroTested(t *testing.T) {
	p := ProviderRates{Provider: worldgen.Cloudflare, Tested: 0, Geoblocked: 0}
	if p.Rate() != 0 {
		t.Fatal("rate with zero denominator must be 0")
	}
}

func TestCategoryRateZeroTested(t *testing.T) {
	r := CategoryRateRow{Tested: 0, Geoblocked: 0}
	if r.Rate() != 0 {
		t.Fatal("rate with zero denominator must be 0")
	}
}

func TestTable2RowRecallZero(t *testing.T) {
	r := Table2Row{Recalled: 0, Actual: 0}
	if r.Recall() != 0 {
		t.Fatal("recall 0/0 must be 0")
	}
}

func TestMedianSingleCountry(t *testing.T) {
	findings := []pipeline.Finding{
		{DomainName: "a.example", Country: "IR"},
		{DomainName: "b.example", Country: "IR"},
		{DomainName: "c.example", Country: "IR"},
	}
	m := MedianBlockedPerCountry(findings, []geo.CountryCode{"IR", "US", "DE"})
	if m != 3 {
		t.Fatalf("median = %v, want 3 (only countries with blocking count)", m)
	}
}

func TestBuildCountryCDNDuplicateDomainsCountInstances(t *testing.T) {
	findings := []pipeline.Finding{
		{DomainName: "a.example", Country: "IR"},
		{DomainName: "a.example", Country: "SY"},
		{DomainName: "a.example", Country: "IR"}, // duplicate pair: two instances
	}
	rows := BuildCountryCDNTable(findings)
	total := 0
	for _, r := range rows {
		total += r.Total
	}
	if total != 3 {
		t.Fatalf("instances = %d; country tables count instances, not domains", total)
	}
}

func TestBuildErrorStats(t *testing.T) {
	res := &lumscan.Result{
		Domains:   []string{"a", "b"},
		Countries: []geo.CountryCode{"US", "KM"},
		Samples: []lumscan.Sample{
			{Domain: 0, Country: 0, Status: 200},
			{Domain: 0, Country: 0, Status: 200},
			{Domain: 0, Country: 1, Err: lumscan.ErrTimeout},
			{Domain: 1, Country: 0, Status: 200},
			{Domain: 1, Country: 1, Err: lumscan.ErrProxy},
			{Domain: 1, Country: 1, Err: lumscan.ErrProxy},
		},
	}
	es := BuildErrorStats(res)
	if es.CountryResponseRates["US"] != 1.0 {
		t.Fatalf("US response rate = %v", es.CountryResponseRates["US"])
	}
	if es.CountryResponseRates["KM"] != 0.0 {
		t.Fatalf("KM response rate = %v", es.CountryResponseRates["KM"])
	}
	if es.P90DomainErrorRate <= 0 {
		t.Fatal("p90 error rate should be positive with failing samples")
	}
}
