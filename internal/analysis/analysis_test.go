package analysis

import (
	"sync"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/category"
	"geoblock/internal/cfrules"
	"geoblock/internal/pipeline"
	"geoblock/internal/worldgen"
)

var (
	once   sync.Once
	study  *pipeline.Study
	result *pipeline.Top10KResult
)

func top10K(t *testing.T) (*pipeline.Study, *pipeline.Top10KResult) {
	t.Helper()
	once.Do(func() {
		w := worldgen.Generate(worldgen.TestConfig())
		study = pipeline.New(w)
		result = study.RunTop10K(pipeline.Top10KConfig{Concurrency: 8})
	})
	return study, result
}

func TestBuildTable1(t *testing.T) {
	_, r := top10K(t)
	t1 := BuildTable1(r)
	if t1.InitialDomains != 1000 {
		t.Fatalf("initial = %d", t1.InitialDomains)
	}
	if t1.SafeDomains >= t1.InitialDomains || t1.SafeDomains == 0 {
		t.Fatalf("safe = %d", t1.SafeDomains)
	}
	if t1.InitialSamples != t1.SafeDomains*len(r.Countries) {
		t.Fatal("sample pairs wrong")
	}
	if t1.ClusteredPages == 0 || t1.Clusters == 0 {
		t.Fatal("no clustering volume")
	}
	if t1.DiscoveredProviders < 4 || t1.DiscoveredProviders > 7 {
		t.Fatalf("discovered providers = %d, paper found 7", t1.DiscoveredProviders)
	}
}

func TestBuildTable2(t *testing.T) {
	_, r := top10K(t)
	rows, total := BuildTable2(r)
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14 (Table 2)", len(rows))
	}
	if total.Actual == 0 {
		t.Fatal("no actual block pages")
	}
	var sumRec, sumAct int
	for _, row := range rows {
		if row.Recalled > row.Actual {
			t.Fatalf("recall > actual for %v", row.Kind)
		}
		sumRec += row.Recalled
		sumAct += row.Actual
	}
	if sumRec != total.Recalled || sumAct != total.Actual {
		t.Fatal("totals row does not sum")
	}
	overall := total.Recall()
	if overall <= 0 || overall > 0.95 {
		t.Fatalf("overall recall %.3f (paper: 0.583)", overall)
	}
}

func TestBuildTable3(t *testing.T) {
	s, r := top10K(t)
	rows := BuildTable3(s.World, r.Findings)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Rows sorted by total descending; Shopping should rank high.
	for i := 1; i < len(rows); i++ {
		if rows[i].Total > rows[i-1].Total {
			t.Fatal("rows not sorted")
		}
	}
	uniqueTotal := 0
	for _, row := range rows {
		uniqueTotal += row.Total
	}
	if uniqueTotal < pipeline.UniqueDomains(r.Findings) {
		t.Fatal("table drops domains")
	}
}

func TestBuildCategoryRates(t *testing.T) {
	s, r := top10K(t)
	tested := RespondingDomains(r.Initial)
	rows := BuildCategoryRates(s.World, tested, r.Findings)
	var testedSum, blockedSum int
	for _, row := range rows {
		if row.Geoblocked > row.Tested {
			t.Fatalf("blocked > tested for %s", row.Category)
		}
		testedSum += row.Tested
		blockedSum += row.Geoblocked
	}
	if testedSum != len(tested) {
		t.Fatalf("tested sum %d != %d", testedSum, len(tested))
	}
	rate := float64(blockedSum) / float64(testedSum)
	// Paper: 1.6% of Top-10K tested domains geoblock.
	if rate < 0.003 || rate > 0.06 {
		t.Fatalf("overall geoblock rate %.4f (paper: 0.016)", rate)
	}
	// Market-segmented categories (Shopping, Travel, Vehicles, …) should
	// out-block the low-propensity ones (IT, Games, Education) in
	// aggregate; per-category comparisons are too noisy at test scale.
	high := map[category.Category]bool{
		category.Shopping: true, category.Advertising: true,
		category.JobSearch: true, category.Travel: true,
		category.PersonalVehicles: true, category.Auctions: true,
	}
	low := map[category.Category]bool{
		category.InfoTech: true, category.Games: true,
		category.Entertainment: true, category.Finance: true,
		category.Education: true,
	}
	var hiT, hiB, loT, loB int
	for _, row := range rows {
		if high[row.Category] {
			hiT += row.Tested
			hiB += row.Geoblocked
		}
		if low[row.Category] {
			loT += row.Tested
			loB += row.Geoblocked
		}
	}
	if hiT == 0 || loT == 0 {
		t.Fatal("category buckets empty")
	}
	if float64(hiB)/float64(hiT) <= float64(loB)/float64(loT) {
		t.Fatalf("high-propensity categories (%d/%d) should out-block low (%d/%d)",
			hiB, hiT, loB, loT)
	}
}

func TestBuildTable5(t *testing.T) {
	s, r := top10K(t)
	t5 := BuildTable5(s.World, r.Findings)
	if len(t5.TLDs) == 0 || len(t5.Countries) == 0 {
		t.Fatal("empty table 5")
	}
	if t5.TLDs[0].Key != ".com" {
		t.Fatalf("top TLD = %s, want .com (paper: 70 of 100)", t5.TLDs[0].Key)
	}
	topCountries := map[string]bool{}
	for i := 0; i < 6 && i < len(t5.Countries); i++ {
		topCountries[t5.Countries[i].Key] = true
	}
	sanctioned := 0
	for _, cc := range []string{"IR", "SY", "SD", "CU"} {
		if topCountries[cc] {
			sanctioned++
		}
	}
	if sanctioned < 3 {
		t.Fatalf("only %d sanctioned countries in the top 6: %v", sanctioned, t5.Countries[:6])
	}
	// Instances per country must sum to total findings.
	sum := 0
	for _, kv := range t5.Countries {
		sum += kv.Count
	}
	if sum != len(r.Findings) {
		t.Fatalf("country instances %d != findings %d", sum, len(r.Findings))
	}
}

func TestBuildCountryCDNTable(t *testing.T) {
	_, r := top10K(t)
	rows := BuildCountryCDNTable(r.Findings)
	total := 0
	for _, row := range rows {
		perKindSum := 0
		for _, n := range row.PerKind {
			perKindSum += n
		}
		if perKindSum != row.Total {
			t.Fatalf("row %s does not sum", row.Country)
		}
		total += row.Total
	}
	if total != len(r.Findings) {
		t.Fatal("table drops instances")
	}
	// AppEngine column only in sanctioned countries.
	for _, row := range rows {
		if row.PerKind[blockpage.AppEngine] > 0 {
			switch row.Country {
			case "IR", "SY", "SD", "CU":
			default:
				t.Fatalf("AppEngine instances in %s", row.Country)
			}
		}
	}
}

func TestBuildProviderRates(t *testing.T) {
	s, r := top10K(t)
	tested := map[worldgen.Provider]int{}
	for _, d := range s.World.Top10K() {
		for _, p := range d.Providers {
			if p.IsCDN() {
				tested[p]++
			}
		}
	}
	rates := BuildProviderRates(tested, r.Findings)
	var gae, cf ProviderRates
	for _, pr := range rates {
		switch pr.Provider {
		case worldgen.AppEngine:
			gae = pr
		case worldgen.Cloudflare:
			cf = pr
		}
	}
	if gae.Tested == 0 || cf.Tested == 0 {
		t.Fatal("provider populations missing")
	}
	// §4.2.1: AppEngine has by far the highest per-customer rate
	// (40.7% vs 3.1%).
	if gae.Rate() <= cf.Rate() {
		t.Fatalf("GAE rate %.3f should exceed CF rate %.3f", gae.Rate(), cf.Rate())
	}
	if gae.Rate() < 0.15 || gae.Rate() > 0.7 {
		t.Fatalf("GAE rate %.3f (paper: 0.407)", gae.Rate())
	}
}

func TestMedianBlockedPerCountry(t *testing.T) {
	_, r := top10K(t)
	med := MedianBlockedPerCountry(r.Findings, r.Countries)
	// Paper: median 3 at full scale; proportionally lower here, but it
	// must be small and non-negative.
	if med < 0 || med > 10 {
		t.Fatalf("median = %v", med)
	}
}

func TestBuildFigures(t *testing.T) {
	s, r := top10K(t)
	exp := s.RunConsistencyExperiment(r, 25, 60, []int{1, 3, 20})

	f1 := BuildFigure1(exp)
	if len(f1) != 3 {
		t.Fatalf("figure 1 series = %d", len(f1))
	}
	for _, series := range f1 {
		for i := 1; i < len(series.Points); i++ {
			if series.Points[i].Y < series.Points[i-1].Y {
				t.Fatal("figure 1 CDF not monotone")
			}
		}
	}

	f2 := BuildFigure2(r)
	if f2.All.Total() == 0 {
		t.Fatal("figure 2 empty")
	}
	if f2.Blocked.Total() > f2.All.Total() {
		t.Fatal("blocked subset exceeds all")
	}

	f3 := BuildFigure3(exp)
	if len(f3.Points) != 3 {
		t.Fatalf("figure 3 points = %d", len(f3.Points))
	}
	if f3.Points[0].Y < f3.Points[len(f3.Points)-1].Y-1e-9 {
		t.Fatal("figure 3 should decline with sample size")
	}

	f4 := BuildFigure4(r)
	if len(f4.Points) == 0 {
		t.Fatal("figure 4 empty")
	}

	ds := cfrules.Synthesize(7, 0.1)
	f5 := BuildFigure5(ds)
	if len(f5) != 5 {
		t.Fatalf("figure 5 series = %d", len(f5))
	}
	for _, series := range f5 {
		last := 0.0
		for _, p := range series.Points {
			if p.Y < last {
				t.Fatalf("figure 5 series %s not cumulative", series.Name)
			}
			last = p.Y
		}
	}
}
