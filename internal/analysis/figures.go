package analysis

import (
	"fmt"
	"sort"

	"geoblock/internal/cfrules"
	"geoblock/internal/geo"
	"geoblock/internal/pipeline"
	"geoblock/internal/stats"
)

// BuildFigure1 produces the Figure 1 CDFs: for each sample size, the
// distribution over pairs of the per-pair mean block rate. The paper's
// headline readout is the fraction of pairs under 80% at 20 samples
// (3.9%).
func BuildFigure1(exp *pipeline.ConsistencyExperiment) []stats.Series {
	sizes := append([]int(nil), exp.SampleSizes...)
	sort.Ints(sizes)
	var out []stats.Series
	for _, k := range sizes {
		rates := exp.RatesBySize[k]
		if len(rates) == 0 {
			continue
		}
		c := stats.NewCDF(rates...)
		out = append(out, stats.Series{
			Name:   fmt.Sprintf("%d samples", k),
			Points: c.Points(50),
		})
	}
	return out
}

// Figure2 holds the relative-size distributions: all samples vs the
// fingerprinted block pages, as normalized histograms over the
// relative difference (rep−len)/rep.
type Figure2 struct {
	All     *stats.Histogram
	Blocked *stats.Histogram
}

// BuildFigure2 bins the relative length differences. The x-range spans
// −0.5 (sample 50% longer than the representative) to 1 (sample of
// zero length).
func BuildFigure2(r *pipeline.Top10KResult) Figure2 {
	f := Figure2{
		All:     stats.NewHistogram(-0.5, 1.0, 60),
		Blocked: stats.NewHistogram(-0.5, 1.0, 60),
	}
	for _, d := range r.DiffsAll {
		f.All.Add(d)
	}
	for _, d := range r.DiffsBlocked {
		f.Blocked.Add(d)
	}
	return f
}

// BuildFigure3 produces the false-negative curve: mean miss rate per
// sample size (paper: 1.7% at 3 samples).
func BuildFigure3(exp *pipeline.ConsistencyExperiment) stats.Series {
	sizes := append([]int(nil), exp.SampleSizes...)
	sort.Ints(sizes)
	s := stats.Series{Name: "false negative rate"}
	for _, k := range sizes {
		s.Points = append(s.Points, stats.Point{X: float64(k), Y: exp.MeanFalseNegative(k)})
	}
	return s
}

// BuildFigure4 produces the CDF of per-pair block-page agreement across
// the 23 samples of the confirmation flow (the paper eliminates the
// 11.4% of pairs under 80%).
func BuildFigure4(r *pipeline.Top10KResult) stats.Series {
	c := stats.NewCDF(r.AgreementRates...)
	return stats.Series{Name: "agreement across samples", Points: c.Points(60)}
}

// BuildFigure5 produces the cumulative Enterprise rule-activation
// series per sanctioned country (plus Crimea's omission noted in §6 —
// the snapshot tracks countries only).
func BuildFigure5(ds *cfrules.Dataset) []stats.Series {
	days := make([]cfrules.Day, 0, 28)
	for d := cfrules.Day(0); d <= cfrules.DaySnapshot; d += 50 {
		days = append(days, d)
	}
	days = append(days, cfrules.DaySnapshot)
	var out []stats.Series
	for _, cc := range []geo.CountryCode{"KP", "IR", "SY", "SD", "CU"} {
		counts := ds.CumulativeActivations(cc, days)
		s := stats.Series{Name: string(cc)}
		for i, d := range days {
			s.Points = append(s.Points, stats.Point{X: float64(d), Y: float64(counts[i])})
		}
		out = append(out, s)
	}
	return out
}
