package blockpage

import (
	"strings"
	"testing"

	"geoblock/internal/textfeat"
)

func TestJunkKindsRender(t *testing.T) {
	for _, k := range JunkKinds() {
		body := RenderJunk(k, "site.example.com", "abc123")
		if len(body) < 200 {
			t.Errorf("junk kind %d too short (%d bytes)", k, len(body))
		}
		if len(body) > 4000 {
			t.Errorf("junk kind %d too long (%d bytes) to be an outlier", k, len(body))
		}
	}
}

func TestJunkPagesAreNotBlockPages(t *testing.T) {
	for _, k := range JunkKinds() {
		body := RenderJunk(k, "site.example.com", "abc123")
		for _, bk := range append(Kinds(), Censorship) {
			if Matches(bk, body) {
				t.Errorf("junk kind %d matches block signature %v", k, bk)
			}
		}
	}
}

func TestJunkPagesClusterAcrossSites(t *testing.T) {
	// The whole point of junk templates: instances from unrelated
	// domains must be near-identical, so they collapse into a handful
	// of clusters instead of thousands of per-domain ones.
	var docs []string
	for i := 0; i < 10; i++ {
		domain := "junk" + string(rune('a'+i)) + ".example"
		docs = append(docs,
			RenderJunk(JunkMaintenance, domain, "n"+string(rune('0'+i))),
			RenderJunk(JunkEmptyApp, domain, "h"+string(rune('0'+i))),
		)
	}
	_, vecs := textfeat.FitTransform(docs)
	for i := 0; i < len(docs); i += 2 {
		for j := i + 2; j < len(docs); j += 2 {
			if sim := textfeat.Cosine(vecs[i], vecs[j]); sim < 0.9 {
				t.Fatalf("maintenance pages %d/%d similarity %.3f, want near-identical", i, j, sim)
			}
		}
	}
}

func TestJunkParkedVariesByDomain(t *testing.T) {
	a := RenderJunk(JunkParked, "one.example", "x")
	b := RenderJunk(JunkParked, "two.example", "x")
	if a == b {
		t.Fatal("parked page should embed the domain")
	}
	if !strings.Contains(a, "one.example") {
		t.Fatal("parked page missing domain")
	}
}

func TestJunkRenderPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RenderJunk(JunkKind(99), "x", "y")
}
