package blockpage

import (
	"fmt"
	"strings"

	"geoblock/internal/stats"
)

// OriginSite renders the "real" page of one domain. Page length is the
// property the paper's outlier heuristic keys on, so the generator
// controls it explicitly: each site has a characteristic base length
// drawn from a heavy-tailed distribution (most sites tens of kilobytes,
// a meaningful minority short enough to be confusable with block
// pages), and each render jitters around it to model dynamic content —
// ads, recommendation modules, per-request tokens — exactly the noise
// that makes a fixed raw-length comparison unreliable (§4.1.5).
//
// Two properties make the type cheap enough for a million-domain world:
// Length(seed) is O(1) and allocation-free (the serving layer uses it
// for Content-Length and only materializes bodies a client reads), and
// the struct holds no cached page — Render rebuilds the identical bytes
// on demand. Render(seed) always produces exactly Length(seed) bytes.
type OriginSite struct {
	Domain  string
	Title   string
	BaseLen int     // characteristic body length in bytes
	Jitter  float64 // relative spread of dynamic content per render

	wordSeed  uint64
	headLen   int // rendered length of the fixed page head
	footLen   int // rendered length of the fixed page foot
	fillerLen int // exact length of the static filler body
}

// NewOriginSite builds the origin generator for domain. The base length
// is heavy-tailed: median in the tens of kilobytes with ~10% of sites
// under 3 KB. rng should be a fork dedicated to this domain so that the
// site is identical across runs.
func NewOriginSite(domain string, rng *stats.RNG) *OriginSite {
	base := int(2000 * expScale(rng))
	if base < 600 {
		base = 600
	}
	s := &OriginSite{
		Domain:   domain,
		Title:    siteTitle(domain, rng),
		BaseLen:  base,
		Jitter:   0.01 + 0.03*rng.Float64(),
		wordSeed: rng.Uint64(),
	}
	s.headLen = len(s.head())
	s.footLen = len(s.foot())
	s.fillerLen = int(float64(base)*0.85) - s.headLen - s.footLen
	if s.fillerLen < minFiller {
		s.fillerLen = minFiller
	}
	return s
}

// expScale draws a multiplier with a heavy right tail, giving the
// desired page-length distribution when multiplied by 2 KB.
func expScale(rng *stats.RNG) float64 {
	v := rng.NormFloat64()*0.9 + 2.2 // lognormal-ish parameters
	s := 1.0
	for i := 0; i < int(v*2); i++ {
		s *= 1.4
	}
	if s > 120 {
		s = 120
	}
	if s < 0.3 {
		s = 0.3
	}
	return s
}

var wordBank = strings.Fields(`
service product discover explore featured latest update community support
account pricing enterprise solution platform global customer review news
analytics insight market research report partner develop integrate secure
deliver experience network cloud digital content stream device mobile
search result category collection popular trending season offer deal
shipping return policy privacy terms contact about career press investor
blog story guide tutorial resource download documentation release version
team mission value quality trust innovation design build launch scale
performance reliability availability region language currency payment
checkout basket wishlist member subscribe newsletter event webinar forum
`)

func siteTitle(domain string, rng *stats.RNG) string {
	base := domain
	if i := strings.IndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return fmt.Sprintf("%s — %s %s", titleCase(base),
		titleCase(wordBank[rng.Intn(len(wordBank))]),
		wordBank[rng.Intn(len(wordBank))])
}

// PageVariant selects the application-layer variant of the page: the
// §7.3 geo-discrimination phenomenon where the page loads fine but
// features are removed or prices raised for some countries.
type PageVariant struct {
	// Restricted removes the commerce features (checkout) and inserts a
	// region notice.
	Restricted bool
	// PriceFactor multiplies the displayed price; 0 means 1.0. The
	// rendered price has a fixed width, so price discrimination never
	// changes page length — invisible to the length heuristic.
	PriceFactor float64
}

func (s *OriginSite) head() string { return s.headVariant(PageVariant{}) }

// basePrice derives the site's deterministic base price.
func (s *OriginSite) basePrice() float64 {
	return 20 + float64(s.wordSeed%38000)/100
}

// Price returns the displayed price for a variant (fixed width).
func (s *OriginSite) Price(v PageVariant) string {
	f := v.PriceFactor
	if f == 0 {
		f = 1
	}
	return fmt.Sprintf("%09.2f", s.basePrice()*f)
}

func (s *OriginSite) headVariant(v PageVariant) string {
	commerce := `<a href="/checkout">Checkout</a>`
	if v.Restricted {
		commerce = `<span class="region-notice">Checkout is not available in your region.</span>`
	}
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%s</title>
<link rel="stylesheet" href="/assets/site.css">
<script src="/assets/app.js" defer></script>
</head>
<body>
<header><nav><a href="/">%s</a> <a href="/products">Products</a> %s <a href="/about">About</a> <a href="/contact">Contact</a></nav></header>
<p class="offer">Today's featured offer: <span class="price" data-amount="%s">USD %s</span></p>
<main>
`, s.Title, s.Domain, commerce, s.Price(v), s.Price(v))
}

func (s *OriginSite) foot() string {
	return fmt.Sprintf(`</main>
<footer><p>&copy; %s. All rights reserved. <a href="/privacy">Privacy</a> <a href="/terms">Terms</a></p></footer>
</body>
</html>
`, s.Domain)
}

const (
	dynOpen   = "<section id=\"dynamic\"><!--"
	dynClose  = "--></section>\n"
	minFiller = 64
)

// dynamicLen returns the byte length of the per-request dynamic section
// for sampleSeed. It is an O(1) pure function.
func (s *OriginSite) dynamicLen(sampleSeed uint64) int {
	rng := stats.NewRNG(s.wordSeed ^ stats.Mix64(sampleSeed))
	n := int(float64(s.BaseLen) * 0.15 * (1 + s.Jitter/0.15*rng.NormFloat64()))
	if n < 0 {
		n = 0
	}
	return len(dynOpen) + n + len(dynClose)
}

// Length returns the exact body length Render(sampleSeed) will produce,
// without rendering. The serving layer uses this as Content-Length.
func (s *OriginSite) Length(sampleSeed uint64) int {
	return s.headLen + s.fillerLen + s.footLen + s.dynamicLen(sampleSeed)
}

// VariantLength is Length for an application-layer variant.
func (s *OriginSite) VariantLength(sampleSeed uint64, v PageVariant) int {
	return len(s.headVariant(v)) + s.fillerLen + s.footLen + s.dynamicLen(sampleSeed)
}

// Render produces the page for one request. The same (site, sampleSeed)
// pair always produces the same bytes, and len(result) ==
// Length(sampleSeed).
func (s *OriginSite) Render(sampleSeed uint64) string {
	return s.RenderVariant(sampleSeed, PageVariant{})
}

// RenderVariant produces an application-layer variant of the page;
// len(result) == VariantLength(sampleSeed, v).
func (s *OriginSite) RenderVariant(sampleSeed uint64, v PageVariant) string {
	var b strings.Builder
	b.Grow(s.VariantLength(sampleSeed, v) + 16)
	b.WriteString(s.headVariant(v))
	writeExact(&b, stats.NewRNG(s.wordSeed), s.fillerLen)
	b.WriteString(s.foot())

	dyn := s.dynamicLen(sampleSeed) - len(dynOpen) - len(dynClose)
	b.WriteString(dynOpen)
	rng := stats.NewRNG(s.wordSeed ^ stats.Mix64(sampleSeed) ^ 0x5bd1e995)
	for dyn > 0 {
		tok := fmt.Sprintf(" slot=%08x", uint32(rng.Uint64()))
		if len(tok) > dyn {
			tok = tok[:dyn]
		}
		b.WriteString(tok)
		dyn -= len(tok)
	}
	b.WriteString(dynClose)
	return b.String()
}

// writeExact emits exactly budget bytes of paragraph filler: whole
// word-built paragraphs while room remains, then a padded closer.
func writeExact(b *strings.Builder, rng *stats.RNG, budget int) {
	const wrapper = 9 // len("<p>") + len(".</p>\n")
	written := 0
	for budget-written > 240 {
		start := b.Len()
		b.WriteString("<p>")
		n := 8 + rng.Intn(25)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			w := wordBank[rng.Intn(len(wordBank))]
			if i == 0 {
				w = titleCase(w)
			}
			b.WriteString(w)
		}
		b.WriteString(".</p>\n")
		written += b.Len() - start
	}
	// Pad the remainder exactly.
	rem := budget - written
	if rem < wrapper {
		for i := 0; i < rem; i++ {
			b.WriteByte(' ')
		}
		return
	}
	b.WriteString("<p>")
	for i := 0; i < rem-wrapper; i++ {
		if i%7 == 6 {
			b.WriteByte(' ')
		} else {
			b.WriteByte("abcdefghijklmnop"[rng.Intn(16)])
		}
	}
	b.WriteString(".</p>\n")
}

// titleCase upper-cases the first ASCII letter of w.
func titleCase(w string) string {
	if w == "" {
		return w
	}
	c := w[0]
	if c >= 'a' && c <= 'z' {
		return string(c-'a'+'A') + w[1:]
	}
	return w
}
