package blockpage

import (
	"strings"
	"testing"

	"geoblock/internal/stats"
)

func sampleVars() Vars {
	return Vars{
		Domain:      "shop.example.com",
		Path:        "/",
		ClientIP:    "91.108.4.7",
		CountryName: "Iran",
		RayID:       "44bfa65f2a8c2b91",
		Nonce:       "f3a9c1d0",
	}
}

func TestEveryKindRenders(t *testing.T) {
	for _, k := range append(Kinds(), Censorship) {
		body := Render(k, sampleVars())
		if len(body) < 100 {
			t.Errorf("%v renders suspiciously short page (%d bytes)", k, len(body))
		}
	}
}

func TestSignaturesPresentInOwnTemplate(t *testing.T) {
	for _, k := range append(Kinds(), Censorship) {
		body := Render(k, sampleVars())
		if !Matches(k, body) {
			t.Errorf("%v template does not match its own signature", k)
		}
	}
}

func TestSignaturesUniqueAcrossTemplates(t *testing.T) {
	v := sampleVars()
	for _, k := range append(Kinds(), Censorship) {
		body := Render(k, v)
		for _, other := range append(Kinds(), Censorship) {
			if other == k {
				continue
			}
			// The Cloudflare block signature intentionally also matches
			// Baidu's near-identical page only via its own tokens; the
			// disambiguating tokens must keep them apart.
			if Matches(other, body) {
				t.Errorf("%v page matches %v signature", k, other)
			}
		}
	}
}

func TestSignatureSurvivesVariableFields(t *testing.T) {
	for _, k := range Kinds() {
		a := Render(k, sampleVars())
		b := Render(k, Vars{
			Domain: "news.other.net", Path: "/world", ClientIP: "5.6.7.8",
			CountryName: "Syria", RayID: "deadbeef01", Nonce: "zz91",
		})
		if !Matches(k, a) || !Matches(k, b) {
			t.Errorf("%v signature not stable across variable fields", k)
		}
	}
}

func TestOriginDoesNotMatchAnySignature(t *testing.T) {
	rng := stats.NewRNG(100)
	for i := 0; i < 20; i++ {
		site := NewOriginSite("example"+string(rune('a'+i))+".com", rng.Fork(string(rune('a'+i))))
		body := site.Render(uint64(i))
		for _, k := range append(Kinds(), Censorship) {
			if Matches(k, body) {
				t.Fatalf("origin page matches %v", k)
			}
		}
	}
}

func TestExplicitSet(t *testing.T) {
	want := map[Kind]bool{
		Cloudflare: true, CloudFront: true, AppEngine: true,
		Baidu: true, Airbnb: true,
	}
	for _, k := range Kinds() {
		if k.Explicit() != want[k] {
			t.Errorf("%v Explicit() = %v", k, k.Explicit())
		}
	}
}

func TestAmbiguousAndChallengePartition(t *testing.T) {
	for _, k := range Kinds() {
		n := 0
		if k.Explicit() {
			n++
		}
		if k.Ambiguous() {
			n++
		}
		if k.Challenge() {
			n++
		}
		if n != 1 {
			t.Errorf("%v belongs to %d classes, want exactly 1", k, n)
		}
	}
}

func TestStatusCodes(t *testing.T) {
	if Cloudflare.Status() != 403 || Akamai.Status() != 403 {
		t.Fatal("block pages must be 403")
	}
	if CloudflareJS.Status() != 503 {
		t.Fatal("JS challenge is served with 503")
	}
	if KindNone.Status() != 200 {
		t.Fatal("KindNone means success")
	}
}

func TestKindString(t *testing.T) {
	if Akamai.String() != "Akamai" || Kind(99).String() == "" {
		t.Fatal("String() broken")
	}
}

func TestBlockPagesShorterThanTypicalOrigin(t *testing.T) {
	// The length heuristic depends on block pages being much shorter
	// than a typical origin page.
	v := sampleVars()
	for _, k := range Kinds() {
		if n := len(Render(k, v)); n > 6000 {
			t.Errorf("%v block page is %d bytes; expected < 6 KB", k, n)
		}
	}
}

func TestOriginDeterministic(t *testing.T) {
	a := NewOriginSite("det.example.com", stats.NewRNG(5))
	b := NewOriginSite("det.example.com", stats.NewRNG(5))
	if a.Render(7) != b.Render(7) {
		t.Fatal("origin rendering not deterministic")
	}
	if a.Render(7) == a.Render(8) {
		t.Fatal("dynamic section should vary with sample seed")
	}
}

func TestOriginLengthJitterBounded(t *testing.T) {
	site := NewOriginSite("jitter.example.com", stats.NewRNG(11))
	base := len(site.Render(0))
	for i := uint64(1); i < 30; i++ {
		n := len(site.Render(i))
		ratio := float64(n) / float64(base)
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("render %d length ratio %.2f outside sane bounds", i, ratio)
		}
	}
}

func TestOriginLengthDistribution(t *testing.T) {
	rng := stats.NewRNG(21)
	short, total := 0, 400
	var lens []float64
	for i := 0; i < total; i++ {
		site := NewOriginSite("dist.example.com", rng.Fork(string(rune(i))+"x"))
		n := len(site.Render(0))
		lens = append(lens, float64(n))
		if n < 3000 {
			short++
		}
	}
	med := stats.Median(lens)
	if med < 4000 || med > 80000 {
		t.Fatalf("median origin length %v outside expected band", med)
	}
	frac := float64(short) / float64(total)
	if frac < 0.02 || frac > 0.40 {
		t.Fatalf("short-page fraction %.2f; want a minority but nonzero", frac)
	}
}

func TestRenderPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Render(Kind(42), Vars{})
}

func TestVarsAppearInPages(t *testing.T) {
	v := sampleVars()
	cf := Render(Cloudflare, v)
	for _, want := range []string{v.Domain, v.CountryName, v.RayID, v.ClientIP} {
		if !strings.Contains(cf, want) {
			t.Errorf("Cloudflare page missing %q", want)
		}
	}
	ak := Render(Akamai, v)
	if !strings.Contains(ak, v.Domain) || !strings.Contains(ak, v.RayID) {
		t.Error("Akamai page missing variable fields")
	}
}

func TestAirbnbNamesBlockedRegions(t *testing.T) {
	body := Render(Airbnb, sampleVars())
	for _, region := range []string{"Crimea", "Iran", "Syria", "North Korea"} {
		if !strings.Contains(body, region) {
			t.Errorf("Airbnb page must name %s", region)
		}
	}
}

func TestLengthMatchesRender(t *testing.T) {
	rng := stats.NewRNG(77)
	for i := 0; i < 25; i++ {
		site := NewOriginSite("len.example.com", rng.Fork(string(rune('A'+i))))
		for seed := uint64(0); seed < 5; seed++ {
			want := site.Length(seed)
			got := len(site.Render(seed))
			if got != want {
				t.Fatalf("site %d seed %d: Length=%d but Render produced %d bytes", i, seed, want, got)
			}
		}
	}
}
