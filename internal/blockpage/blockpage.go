// Package blockpage holds the HTML the simulated Internet serves when a
// request is denied: one template per fingerprint class the paper
// identifies (Table 2), a national-censorship page used by the censor
// substrate, and the generator for ordinary origin pages.
//
// Fidelity matters here: the paper's detection pipeline keys on the
// distinguishing boilerplate of each provider's page, on whether the
// page explicitly states a geographic reason, and on page length
// relative to the blocked site's real page. The templates therefore
// carry the same signature tokens and comparable lengths to their
// real-world counterparts, with the request-specific fields (ray IDs,
// reference numbers, client IPs) varying per response exactly where the
// real pages vary.
package blockpage

import (
	"fmt"
	"strings"
)

// Kind identifies one block-page class.
type Kind int

// The 14 classes of Table 2, in the paper's row order, plus the
// censorship page and the sentinel KindNone.
const (
	KindNone Kind = iota
	Akamai
	Cloudflare
	AppEngine
	CloudflareCaptcha
	CloudflareJS
	CloudFront
	BaiduCaptcha
	Baidu
	Incapsula
	Soasta
	Airbnb
	DistilCaptcha
	Nginx
	Varnish
	Censorship
	// Legal451 is the RFC 7725 "Unavailable For Legal Reasons" page —
	// the right way to signal legally mandated denial, which the paper
	// "only observed ... twice in the course of our experiments" (§2.1).
	Legal451
)

// Kinds lists every real block-page class (excluding KindNone and the
// censorship page) in Table 2 order.
func Kinds() []Kind {
	return []Kind{
		Akamai, Cloudflare, AppEngine, CloudflareCaptcha, CloudflareJS,
		CloudFront, BaiduCaptcha, Baidu, Incapsula, Soasta, Airbnb,
		DistilCaptcha, Nginx, Varnish,
	}
}

var kindNames = map[Kind]string{
	KindNone:          "none",
	Akamai:            "Akamai",
	Cloudflare:        "Cloudflare",
	AppEngine:         "AppEngine",
	CloudflareCaptcha: "Cloudflare Captcha",
	CloudflareJS:      "Cloudflare JavaScript",
	CloudFront:        "Amazon CloudFront",
	BaiduCaptcha:      "Baidu Captcha",
	Baidu:             "Baidu",
	Incapsula:         "Incapsula",
	Soasta:            "Soasta",
	Airbnb:            "Airbnb",
	DistilCaptcha:     "Distil Captcha",
	Nginx:             "nginx",
	Varnish:           "Varnish",
	Censorship:        "Censorship",
	Legal451:          "HTTP 451",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Explicit reports whether the page explicitly attributes the denial to
// the requester's geographic location. The paper restricts its headline
// analysis to these five classes (§4.1.3): Cloudflare, Amazon
// CloudFront, Google App Engine, Baidu, and Airbnb.
func (k Kind) Explicit() bool {
	switch k {
	case Cloudflare, CloudFront, AppEngine, Baidu, Airbnb, Legal451:
		return true
	}
	return false
}

// Ambiguous reports whether the same page is also served for non-geo
// reasons (bot detection, other errors), making geoblocking
// indistinguishable from abuse defenses without resampling (§5.2.2).
func (k Kind) Ambiguous() bool {
	switch k {
	case Akamai, Incapsula, Soasta, Nginx, Varnish:
		return true
	}
	return false
}

// Challenge reports whether the page is an interactive challenge
// (captcha or JavaScript) rather than a hard denial.
func (k Kind) Challenge() bool {
	switch k {
	case CloudflareCaptcha, CloudflareJS, BaiduCaptcha, DistilCaptcha:
		return true
	}
	return false
}

// Status returns the HTTP status code the page is served with.
func (k Kind) Status() int {
	switch k {
	case CloudflareJS:
		return 503
	case Censorship:
		return 403
	case Legal451:
		return 451 // RFC 7725
	case KindNone:
		return 200
	default:
		return 403
	}
}

// Vars carries the request-specific fields substituted into a template.
type Vars struct {
	Domain      string // blocked site, e.g. "example.com"
	Path        string // requested path, default "/"
	ClientIP    string // requester's address as the edge saw it
	CountryName string // geolocated country, e.g. "Iran"
	RayID       string // Cloudflare ray / Akamai reference / request ID
	Nonce       string // short random token for challenge forms
}

func (v Vars) path() string {
	if v.Path == "" {
		return "/"
	}
	return v.Path
}

// Render produces the HTML body for kind with vars substituted.
func Render(k Kind, v Vars) string {
	switch k {
	case Akamai:
		return renderAkamai(v)
	case Cloudflare:
		return renderCloudflare(v)
	case AppEngine:
		return renderAppEngine(v)
	case CloudflareCaptcha:
		return renderCloudflareCaptcha(v)
	case CloudflareJS:
		return renderCloudflareJS(v)
	case CloudFront:
		return renderCloudFront(v)
	case BaiduCaptcha:
		return renderBaiduCaptcha(v)
	case Baidu:
		return renderBaidu(v)
	case Incapsula:
		return renderIncapsula(v)
	case Soasta:
		return renderSoasta(v)
	case Airbnb:
		return renderAirbnb(v)
	case DistilCaptcha:
		return renderDistil(v)
	case Nginx:
		return renderNginx(v)
	case Varnish:
		return renderVarnish(v)
	case Censorship:
		return renderCensorship(v)
	case Legal451:
		return renderLegal451(v)
	}
	panic(fmt.Sprintf("blockpage: Render of %v", k))
}

func renderAkamai(v Vars) string {
	// Akamai serves the same terse page for geo rules, bot detection
	// and other edge denials — the ambiguity at the heart of §3.1.
	return fmt.Sprintf(`<HTML><HEAD>
<TITLE>Access Denied</TITLE>
</HEAD><BODY>
<H1>Access Denied</H1>

You don't have permission to access "http&#58;&#47;&#47;%s%s" on this server.<P>
Reference&#32;&#35;18&#46;%s
</BODY>
</HTML>
`, v.Domain, v.path(), v.RayID)
}

func renderCloudflare(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en-US">
<head>
<title>Access denied | %s used Cloudflare to restrict access</title>
<meta charset="UTF-8" />
<meta name="robots" content="noindex, nofollow" />
<link rel="stylesheet" id="cf_styles-css" href="/cdn-cgi/styles/cf.errors.css" type="text/css" />
</head>
<body>
<div id="cf-wrapper">
  <div id="cf-error-details" class="cf-error-details-wrapper">
    <div class="cf-wrapper cf-header cf-error-overview">
      <h1><span class="cf-error-type" data-translate="error">Error</span>
      <span class="cf-error-code">1009</span></h1>
      <h2 class="cf-subheadline" data-translate="error_desc">Access denied</h2>
    </div>
    <div class="cf-section cf-wrapper">
      <div class="cf-columns two">
        <div class="cf-column">
          <h2 data-translate="what_happened">What happened?</h2>
          <p>The owner of this website (%s) has banned the country or region your IP address is in (%s) from accessing this website.</p>
        </div>
      </div>
    </div>
    <div class="cf-error-footer cf-wrapper">
      <p>
        <span class="cf-footer-item">Cloudflare Ray ID: <strong>%s</strong></span>
        <span class="cf-footer-separator">&bull;</span>
        <span class="cf-footer-item">Your IP: %s</span>
        <span class="cf-footer-separator">&bull;</span>
        <span class="cf-footer-item"><span>Performance &amp; security by</span> Cloudflare</span>
      </p>
    </div>
  </div>
</div>
</body>
</html>
`, v.Domain, v.Domain, v.CountryName, v.RayID, v.ClientIP)
}

func renderAppEngine(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang=en>
<meta charset=utf-8>
<title>Error 403 (Forbidden)!!1</title>
<style>*{margin:0;padding:0}html,code{font:15px/22px arial,sans-serif}</style>
<a href=//www.google.com/><span id=logo aria-label=Google></span></a>
<p><b>403.</b> <ins>That's an error.</ins>
<p>We're sorry, but this service is not available in your country.
App Engine applications cannot be accessed from the country or region
your request originated from (%s). <ins>That's all we know.</ins>
<p>Requested URL: http://%s%s
`, v.CountryName, v.Domain, v.path())
}

func renderCloudflareCaptcha(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en-US">
<head>
<title>Attention Required! | Cloudflare</title>
<meta charset="UTF-8" />
<meta name="robots" content="noindex, nofollow" />
<link rel="stylesheet" id="cf_styles-css" href="/cdn-cgi/styles/cf.errors.css" type="text/css" />
</head>
<body>
<div id="cf-wrapper">
  <div class="cf-alert cf-alert-error cf-cookie-error" id="cookie-alert" data-translate="enable_cookies">Please enable cookies.</div>
  <div id="cf-error-details" class="cf-error-details-wrapper">
    <div class="cf-wrapper cf-header cf-error-overview">
      <h1 data-translate="challenge_headline">One more step</h1>
      <h2 class="cf-subheadline"><span data-translate="complete_sec_check">Please complete the security check to access</span> %s</h2>
    </div>
    <div class="cf-section cf-highlight cf-captcha-container">
      <div class="cf-wrapper">
        <form class="challenge-form" id="challenge-form" action="/cdn-cgi/l/chk_captcha" method="get">
          <script type="text/javascript" src="/cdn-cgi/scripts/cf.challenge.js" data-type="normal" data-ray="%s" async defer></script>
          <noscript id="cf-captcha-bookmark" class="cf-captcha-info">
            <div><input type="hidden" name="id" value="%s"></div>
            <div class="g-recaptcha"></div>
          </noscript>
        </form>
      </div>
    </div>
    <div class="cf-section cf-wrapper">
      <div class="cf-columns two">
        <div class="cf-column">
          <h2 data-translate="why_captcha_headline">Why do I have to complete a CAPTCHA?</h2>
          <p data-translate="why_captcha_detail">Completing the CAPTCHA proves you are a human and gives you temporary access to the web property.</p>
        </div>
        <div class="cf-column">
          <h2 data-translate="resolve_captcha_headline">What can I do to prevent this in the future?</h2>
          <p data-translate="resolve_captcha_antivirus">If you are on a personal connection, like at home, you can run an anti-virus scan on your device to make sure it is not infected with malware.</p>
          <p data-translate="resolve_captcha_network">If you are at an office or shared network, you can ask the network administrator to run a scan across the network looking for misconfigured or infected devices.</p>
        </div>
      </div>
    </div>
    <div class="cf-error-footer cf-wrapper">
      <p>
        <span class="cf-footer-item">Cloudflare Ray ID: <strong>%s</strong></span>
        <span class="cf-footer-separator">&bull;</span>
        <span class="cf-footer-item">Your IP: %s</span>
        <span class="cf-footer-separator">&bull;</span>
        <span class="cf-footer-item"><span>Performance &amp; security by</span> Cloudflare</span>
      </p>
    </div>
  </div>
</div>
</body>
</html>
`, v.Domain, v.RayID, v.Nonce, v.RayID, v.ClientIP)
}

func renderCloudflareJS(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE HTML>
<html lang="en-US">
<head>
<meta charset="UTF-8" />
<meta http-equiv="refresh" content="8" />
<title>Just a moment...</title>
<style type="text/css">body{background-color:#ffffff;font-family:Helvetica,Arial,sans-serif}</style>
</head>
<body>
<table width="100%%" height="100%%" cellpadding="20">
<tr><td align="center" valign="middle">
  <div class="cf-browser-verification cf-im-under-attack">
    <noscript><h1 data-translate="turn_on_js" style="color:#bd2426;">Please turn JavaScript on and reload the page.</h1></noscript>
    <div id="cf-content" style="display:none">
      <h1><span data-translate="checking_browser">Checking your browser before accessing</span> %s.</h1>
      <p data-translate="process_is_automatic">This process is automatic. Your browser will redirect to your requested content shortly.</p>
      <p data-translate="allow_5_secs">Please allow up to 5 seconds&hellip;</p>
    </div>
    <form id="challenge-form" action="/cdn-cgi/l/chk_jschl" method="get">
      <input type="hidden" name="jschl_vc" value="%s"/>
      <input type="hidden" name="pass" value="%s"/>
      <input type="hidden" id="jschl-answer" name="jschl_answer"/>
    </form>
    <script type="text/javascript">
      (function(){var a=function(){try{return !!window.addEventListener}catch(e){return !1}};
      var t,r,a,f,%s={"%s":+(+!![]+[])};</script>
  </div>
  <div class="attribution">DDoS protection by Cloudflare<br/>Ray ID: %s</div>
</td></tr>
</table>
</body>
</html>
`, v.Domain, v.Nonce, v.Nonce, "kJwqyDRp", v.Nonce, v.RayID)
}

func renderCloudFront(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN" "http://www.w3.org/TR/html4/loose.dtd">
<HTML><HEAD><META HTTP-EQUIV="Content-Type" CONTENT="text/html; charset=iso-8859-1">
<TITLE>ERROR: The request could not be satisfied</TITLE>
</HEAD><BODY>
<H1>403 ERROR</H1>
<H2>The request could not be satisfied.</H2>
<HR noshade size="1px">
The Amazon CloudFront distribution is configured to block access from your country.
We can't connect to the server for this app or website at this time. There might be
too much traffic or a configuration error. Try again later, or contact the app or
website owner.
<BR clear="all">
If you provide content to customers through CloudFront, you can find steps to
troubleshoot and help prevent this error by reviewing the CloudFront documentation.
<BR clear="all">
<HR noshade size="1px">
<PRE>
Generated by cloudfront (CloudFront)
Request ID: %s
</PRE>
<ADDRESS>
</ADDRESS>
</BODY></HTML>
`, v.RayID)
}

func renderBaidu(v Vars) string {
	// Baidu Yunjiasu's block page is nearly identical to Cloudflare's in
	// content (the paper notes this, §4.2.2).
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="zh-CN">
<head>
<title>Access denied | %s used Yunjiasu to restrict access</title>
<meta charset="UTF-8" />
<meta name="robots" content="noindex, nofollow" />
<link rel="stylesheet" href="/cdn-cgi/styles/yunjiasu.errors.css" type="text/css" />
</head>
<body>
<div id="yjs-wrapper">
  <div id="yjs-error-details">
    <div class="yjs-header">
      <h1><span class="yjs-error-type">Error</span> <span class="yjs-error-code">1009</span></h1>
      <h2 class="yjs-subheadline">Access denied</h2>
    </div>
    <div class="yjs-section">
      <p>The owner of this website (%s) has banned the country or region your IP address is in (%s) from accessing this website.</p>
    </div>
    <div class="yjs-error-footer">
      <p><span>Baidu Yunjiasu Ray ID: <strong>%s</strong></span> &bull; <span>Your IP: %s</span> &bull; <span>Security by Baidu Yunjiasu</span></p>
    </div>
  </div>
</div>
</body>
</html>
`, v.Domain, v.Domain, v.CountryName, v.RayID, v.ClientIP)
}

func renderBaiduCaptcha(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="zh-CN">
<head>
<title>安全验证 | Baidu Yunjiasu</title>
<meta charset="UTF-8" />
<meta name="robots" content="noindex, nofollow" />
</head>
<body>
<div id="yjs-captcha">
  <h1>One more step: please complete the security verification to access %s</h1>
  <form class="challenge-form" action="/cdn-cgi/l/chk_captcha" method="get">
    <input type="hidden" name="id" value="%s">
    <div class="yjs-recaptcha" data-ray="%s"></div>
    <p>请完成安全验证后继续访问。 Please complete the verification below to continue.</p>
  </form>
  <div class="yjs-footer">Baidu Yunjiasu Ray ID: %s &bull; Your IP: %s</div>
</div>
</body>
</html>
`, v.Domain, v.Nonce, v.RayID, v.RayID, v.ClientIP)
}

func renderIncapsula(v Vars) string {
	// Incapsula serves a small iframe wrapper naming an internal
	// resource; like Akamai the identical page covers many deny reasons.
	return fmt.Sprintf(`<html style="height:100%%"><head><META NAME="ROBOTS" CONTENT="NOINDEX, NOFOLLOW"><meta name="format-detection" content="telephone=no"><meta name="viewport" content="initial-scale=1.0"><meta http-equiv="X-UA-Compatible" content="IE=edge,chrome=1"></head>
<body style="margin:0px;height:100%%"><iframe src="/_Incapsula_Resource?CWUDNSAI=9&xinfo=%s&incident_id=%s&edet=12&cinfo=04000000" frameborder=0 width="100%%" height="100%%" marginheight="0px" marginwidth="0px">Request unsuccessful. Incapsula incident ID: %s</iframe></body></html>
`, v.Nonce, v.RayID, v.RayID)
}

func renderSoasta(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html>
<head><title>Access Denied</title></head>
<body>
<h1>Access Denied</h1>
<p>Your request to %s%s was denied by the site's security policy.</p>
<p>If you believe this is an error, contact the site operator and provide
the incident identifier below.</p>
<p>Incident ID: SOASTA-%s</p>
<p><small>Protected by SOASTA mPulse edge services.</small></p>
</body>
</html>
`, v.Domain, v.path(), v.RayID)
}

func renderAirbnb(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en">
<head>
<title>Airbnb: Not available in your region</title>
<meta charset="utf-8">
</head>
<body>
<div class="container">
  <h1>Sorry!</h1>
  <p>Airbnb is not available in your region.</p>
  <p>Due to trade and export restrictions, Airbnb does not serve its
  website to users located in Crimea, Iran, Syria, and North Korea.</p>
  <p>We apologize for the inconvenience. If you believe you are seeing
  this message in error, please contact us and reference request
  %s from %s.</p>
</div>
</body>
</html>
`, v.RayID, v.ClientIP)
}

func renderDistil(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en">
<head>
<title>Pardon Our Interruption</title>
<meta charset="utf-8">
<link rel="stylesheet" type="text/css" href="/distil_files/interstitial.css">
</head>
<body>
<div class="interstitial">
  <h1>Pardon Our Interruption...</h1>
  <p>As you were browsing <strong>%s</strong> something about your browser
  made us think you were a bot. There are a few reasons this might happen:</p>
  <ul>
    <li>You're a power user moving through this website with super-human speed.</li>
    <li>You've disabled JavaScript in your web browser.</li>
    <li>A third-party browser plugin, such as Ghostery or NoScript, is preventing JavaScript from running.</li>
  </ul>
  <p>After completing the CAPTCHA below, you will immediately regain access to %s.</p>
  <form method="POST" action="/distil_r_captcha.html">
    <input type="hidden" name="P" value="%s">
    <div class="g-recaptcha" data-sitekey="%s"></div>
  </form>
  <p class="ref">Reference ID: #%s</p>
</div>
</body>
</html>
`, v.Domain, v.Domain, v.Nonce, v.Nonce, v.RayID)
}

func renderNginx(Vars) string {
	return `<html>
<head><title>403 Forbidden</title></head>
<body bgcolor="white">
<center><h1>403 Forbidden</h1></center>
<hr><center>nginx</center>
</body>
</html>
`
}

func renderVarnish(v Vars) string {
	return fmt.Sprintf(`<?xml version="1.0" encoding="utf-8"?>
<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Strict//EN" "http://www.w3.org/TR/xhtml1/DTD/xhtml1-strict.dtd">
<html>
  <head>
    <title>403 Forbidden</title>
  </head>
  <body>
    <h1>Error 403 Forbidden</h1>
    <p>Forbidden</p>
    <h3>Guru Meditation:</h3>
    <p>XID: %s</p>
    <hr>
    <p>Varnish cache server</p>
  </body>
</html>
`, v.RayID)
}

func renderCensorship(v Vars) string {
	// A generic national filtering page in the style documented for
	// state censorship (an iframe to a government portal). Deliberately
	// distinct from every CDN page: the pipeline must not confuse the
	// two phenomena.
	return fmt.Sprintf(`<html><head><meta http-equiv="Content-Type" content="text/html; charset=windows-1256"><title>M%s</title></head><body><iframe src="http://10.10.34.34?type=Invalid Site&policy=MainPolicy" style="width: 100%%; height: 100%%" scrolling="no" marginwidth="0" marginheight="0" frameborder="0" vspace="0" hspace="0"></iframe></body></html>
`, v.Nonce)
}

func renderLegal451(v Vars) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en">
<head><title>Unavailable For Legal Reasons</title><meta charset="utf-8"></head>
<body>
<h1>451 Unavailable For Legal Reasons</h1>
<p>Access to %s from your region (%s) has been restricted in
compliance with applicable trade regulations and legal obligations.</p>
<p>This block is required by law and is not at the discretion of the
site operator. Reference: %s.</p>
</body>
</html>
`, v.Domain, v.CountryName, v.RayID)
}

// Signature returns a substring that uniquely identifies kind among all
// templates; the fingerprint package builds its matchers from these.
func Signature(k Kind) string {
	switch k {
	case Akamai:
		return `You don't have permission to access "http&#58;`
	case Cloudflare:
		return "has banned the country or region your IP address is in"
	case AppEngine:
		return "this service is not available in your country"
	case CloudflareCaptcha:
		return "Please complete the security check to access"
	case CloudflareJS:
		return "Checking your browser before accessing"
	case CloudFront:
		return "The Amazon CloudFront distribution is configured to block access from your country"
	case BaiduCaptcha:
		return "please complete the security verification to access"
	case Baidu:
		return "used Yunjiasu to restrict access"
	case Incapsula:
		return "Incapsula incident ID"
	case Soasta:
		return "Protected by SOASTA mPulse edge services"
	case Airbnb:
		return "Airbnb is not available in your region"
	case DistilCaptcha:
		return "something about your browser\n  made us think you were a bot"
	case Nginx:
		return "<center><h1>403 Forbidden</h1></center>\n<hr><center>nginx</center>"
	case Varnish:
		return "Varnish cache server"
	case Censorship:
		return `10.10.34.34?type=Invalid Site`
	case Legal451:
		return "451 Unavailable For Legal Reasons"
	}
	panic(fmt.Sprintf("blockpage: Signature of %v", k))
}

// DisambiguatingTokens lists extra substrings that, together with
// Signature, lower false positives on short generic pages: all must be
// present for a confident match.
func DisambiguatingTokens(k Kind) []string {
	switch k {
	case Cloudflare:
		return []string{"Cloudflare Ray ID:", "error_desc"}
	case Baidu:
		return []string{"Baidu Yunjiasu Ray ID:"}
	case CloudflareCaptcha:
		return []string{"Cloudflare Ray ID:", "chk_captcha"}
	case CloudflareJS:
		return []string{"jschl_vc", "Just a moment..."}
	case Akamai:
		return []string{"Reference&#32;&#35;18&#46;"}
	case Nginx:
		return []string{"<title>403 Forbidden</title>"}
	default:
		return nil
	}
}

// normalizeWhitespace collapses runs of whitespace so signature checks
// tolerate harmless reformatting.
func normalizeWhitespace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Matches reports whether body is an instance of kind's template. It is
// the ground-truth matcher used by tests and by the simulated "manual
// verification" step; the production classifier lives in the
// fingerprint package and is evaluated against this.
func Matches(k Kind, body string) bool {
	nb := normalizeWhitespace(body)
	if !strings.Contains(nb, normalizeWhitespace(Signature(k))) {
		return false
	}
	for _, tok := range DisambiguatingTokens(k) {
		if !strings.Contains(nb, normalizeWhitespace(tok)) {
			return false
		}
	}
	return true
}
