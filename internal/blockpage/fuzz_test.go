package blockpage

import (
	"strings"
	"testing"
)

// allKinds is every class Matches accepts (KindNone has no template and
// no signature by design).
func allKinds() []Kind {
	return append(Kinds(), Censorship, Legal451)
}

// FuzzMatchSignature drives the ground-truth matcher with arbitrary
// bodies, seeded with every page-class fingerprint and its rendered
// template. Matching must never panic, must reject an empty body for
// every class, must survive megabyte-scale junk, and must be invariant
// under whitespace reformatting (the property normalizeWhitespace
// promises).
func FuzzMatchSignature(f *testing.F) {
	v := Vars{
		Domain: "example.com", Path: "/shop", ClientIP: "203.0.113.9",
		CountryName: "Iran", RayID: "4d6f636b526179", Nonce: "n0nce42",
	}
	for _, k := range allKinds() {
		f.Add(Render(k, v))
		f.Add(Signature(k))
	}
	f.Add("")
	f.Add("  \t\n  ")
	f.Add("<html><body>hello world</body></html>")
	f.Add(strings.Repeat("<div>403 Forbidden Cloudflare Ray ID: padding</div>\n", 4096))

	f.Fuzz(func(t *testing.T, body string) {
		for _, k := range allKinds() {
			got := Matches(k, body)
			if got && strings.TrimSpace(body) == "" {
				t.Fatalf("%v matched a blank body", k)
			}
			if Matches(k, " \t\n "+body+" \n\t ") != got {
				t.Errorf("%v verdict changed under whitespace padding", k)
			}
		}
	})
}

// TestMatchesGroundTruth pins the classifier's two anchor properties
// outside the fuzzer: every rendered template matches its own class,
// and no class matches another's bare signature by accident (signatures
// are unique by construction).
func TestMatchesGroundTruth(t *testing.T) {
	v := Vars{Domain: "site.io", ClientIP: "198.51.100.4", CountryName: "Syria", RayID: "deadbeef", Nonce: "abc"}
	for _, k := range allKinds() {
		if !Matches(k, Render(k, v)) {
			t.Errorf("%v does not match its own rendering", k)
		}
	}
	for _, k := range allKinds() {
		for _, other := range allKinds() {
			if other == k {
				continue
			}
			if Matches(other, Signature(k)) {
				t.Errorf("signature of %v matches class %v", k, other)
			}
		}
	}
}

// TestMatchesOversizedBody: a signature buried in megabytes of padding
// still matches; megabytes of padding alone never do.
func TestMatchesOversizedBody(t *testing.T) {
	pad := strings.Repeat("<p>lorem ipsum dolor sit amet</p>\n", 1<<15) // ~1MB
	for _, k := range allKinds() {
		if Matches(k, pad) {
			t.Errorf("%v matched pure padding", k)
		}
	}
	v := Vars{Domain: "big.example", CountryName: "Cuba", RayID: "ff00ff", ClientIP: "192.0.2.1"}
	body := pad + Render(Cloudflare, v) + pad
	if !Matches(Cloudflare, body) {
		t.Error("Cloudflare page lost inside an oversized body")
	}
}
