package blockpage

import "fmt"

// JunkKind is one of the shared non-block "junk" pages that real scans
// hit constantly: default vhost pages, maintenance interstitials,
// framework error pages. They are much shorter than the site's real
// page, so the length heuristic extracts them as outliers — and because
// they are near-identical across thousands of unrelated sites, they
// collapse into a handful of large clusters during the §4.1.3 manual
// examination (most of the paper's 119 clusters were content like
// this, not block pages).
type JunkKind int

const (
	// JunkNginxDefault is the "Welcome to nginx!" default vhost page.
	JunkNginxDefault JunkKind = iota
	// JunkApacheDefault is the Apache2 Ubuntu default page (trimmed).
	JunkApacheDefault
	// JunkMaintenance is a generic "be right back" interstitial.
	JunkMaintenance
	// JunkEmptyApp is a framework skeleton page (SPA shell with no
	// rendered content).
	JunkEmptyApp
	// JunkParked is a registrar parking page.
	JunkParked
)

// JunkKinds lists every junk page class.
func JunkKinds() []JunkKind {
	return []JunkKind{JunkNginxDefault, JunkApacheDefault, JunkMaintenance, JunkEmptyApp, JunkParked}
}

// RenderJunk produces the junk page. The body is almost entirely
// template; only a tiny per-site token varies, so instances cluster.
func RenderJunk(k JunkKind, domain string, nonce string) string {
	switch k {
	case JunkNginxDefault:
		return `<!DOCTYPE html>
<html>
<head>
<title>Welcome to nginx!</title>
<style>
    body { width: 35em; margin: 0 auto; font-family: Tahoma, Verdana, Arial, sans-serif; }
</style>
</head>
<body>
<h1>Welcome to nginx!</h1>
<p>If you see this page, the nginx web server is successfully installed and
working. Further configuration is required.</p>
<p>For online documentation and support please refer to
<a href="http://nginx.org/">nginx.org</a>.<br/>
Commercial support is available at
<a href="http://nginx.com/">nginx.com</a>.</p>
<p><em>Thank you for using nginx.</em></p>
</body>
</html>
`
	case JunkApacheDefault:
		return `<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN" "http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd">
<html xmlns="http://www.w3.org/1999/xhtml">
  <head>
    <title>Apache2 Ubuntu Default Page: It works</title>
  </head>
  <body>
    <div class="main_page">
      <div class="page_header floating_element">
        Apache2 Ubuntu Default Page
      </div>
      <p>This is the default welcome page used to test the correct
      operation of the Apache2 server after installation on Ubuntu systems.
      If you can read this page, it means that the Apache HTTP server
      installed at this site is working properly. You should <b>replace
      this file</b> before continuing to operate your HTTP server.</p>
    </div>
  </body>
</html>
`
	case JunkMaintenance:
		return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en">
<head><title>We'll be right back</title><meta charset="utf-8"></head>
<body style="text-align:center;font-family:sans-serif;padding-top:80px">
<h1>We&rsquo;ll be right back.</h1>
<p>We're performing scheduled maintenance and will be back online shortly.</p>
<p>Thank you for your patience.</p>
<!-- mid:%s -->
</body>
</html>
`, nonce)
	case JunkEmptyApp:
		return fmt.Sprintf(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Loading…</title>
<script src="/static/js/app.%s.js" defer></script>
<link rel="stylesheet" href="/static/css/app.css">
</head>
<body>
<noscript>You need to enable JavaScript to run this app.</noscript>
<div id="root"></div>
</body>
</html>
`, nonce)
	case JunkParked:
		return fmt.Sprintf(`<!DOCTYPE html>
<html>
<head><title>%s</title></head>
<body>
<h1>%s</h1>
<p>This domain is parked free of charge with our domain parking service.</p>
<p>The domain owner has not yet uploaded a website. Interested in this
domain? Contact the owner through our brokerage service.</p>
</body>
</html>
`, domain, domain)
	}
	panic(fmt.Sprintf("blockpage: RenderJunk of %d", int(k)))
}
