// The wire protocol: what a coordinator and its workers agree on.
//
// The protocol ships coordinates, not payloads. A worker regenerates
// the coordinator's deterministic world from the StudySpec's seed and
// calibration, rebuilds each phase's Plan from the PhaseSpec's inputs,
// and proves agreement through the plan and unit fingerprints before
// any lease runs. Only results cross the wire in bulk — and those
// travel as runstore-framed records, so the coordinator journals
// exactly the bytes a single-process run would have journaled.
package fabric

import (
	"fmt"

	"geoblock/internal/geo"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/worldgen"
)

// Endpoint paths served by Coordinator.Handler.
const (
	PathStudy    = "/fabric/study"
	PathPhase    = "/fabric/phase/" // + phase ID
	PathLease    = "/fabric/lease"
	PathExtend   = "/fabric/extend"
	PathComplete = "/fabric/complete"
)

// FaultSpec replicates a named chaos profile on every worker, so a
// distributed chaos run injects the same faults a single-process run
// would. Workers build the injector locally from the seed; verdicts are
// pure functions of (seed, call arguments), so which process asks is
// irrelevant.
type FaultSpec struct {
	Seed    uint64 `json:"seed"`
	Profile string `json:"profile"`
	// Country scopes the profile to one country; empty applies it as
	// the default for all.
	Country string `json:"country,omitempty"`
}

// StudySpec is everything a worker needs to rebuild the coordinator's
// world: the full world calibration and the optional fault profile.
type StudySpec struct {
	World  worldgen.Config `json:"world"`
	Faults *FaultSpec      `json:"faults,omitempty"`
}

// ConfigWire is the serializable subset of scanner.Config — the knobs
// that shape a scan's output, minus the process-local seams (funcs,
// registries, spans, resume state).
type ConfigWire struct {
	Samples            int                `json:"samples"`
	Retries            int                `json:"retries"`
	RequestsPerExit    int                `json:"requests_per_exit"`
	MaxRedirects       int                `json:"max_redirects"`
	ShardSize          int                `json:"shard_size"`
	Headers            map[string]string  `json:"headers"`
	Bodies             scanner.BodyPolicy `json:"bodies"`
	Phase              string             `json:"phase"`
	VerifyConnectivity bool               `json:"verify_connectivity"`
}

// NewConfigWire extracts the serializable subset of cfg, erroring on
// configs the fabric cannot ship: a custom KeepBody func (use
// Config.Bodies) or a WrapTransport middleware.
func NewConfigWire(cfg scanner.Config) (ConfigWire, error) {
	if cfg.KeepBody != nil {
		return ConfigWire{}, fmt.Errorf("fabric: Config.KeepBody is a func and cannot cross the wire; set Config.Bodies instead")
	}
	if cfg.WrapTransport != nil {
		return ConfigWire{}, fmt.Errorf("fabric: Config.WrapTransport cannot cross the wire")
	}
	return ConfigWire{
		Samples:            cfg.Samples,
		Retries:            cfg.Retries,
		RequestsPerExit:    cfg.RequestsPerExit,
		MaxRedirects:       cfg.MaxRedirects,
		ShardSize:          cfg.ShardSize,
		Headers:            cfg.Headers,
		Bodies:             cfg.Bodies,
		Phase:              cfg.Phase,
		VerifyConnectivity: cfg.VerifyConnectivity,
	}, nil
}

// Config rebuilds the scanner.Config a worker executes units under.
// Concurrency stays zero: workers execute one unit at a time, and the
// determinism contract makes the knob output-invariant anyway.
func (w ConfigWire) Config() scanner.Config {
	return scanner.Config{
		Samples:            w.Samples,
		Retries:            w.Retries,
		RequestsPerExit:    w.RequestsPerExit,
		MaxRedirects:       w.MaxRedirects,
		ShardSize:          w.ShardSize,
		Headers:            w.Headers,
		Bodies:             w.Bodies,
		Phase:              w.Phase,
		VerifyConnectivity: w.VerifyConnectivity,
	}
}

// PhaseSpec describes one scan phase: the inputs a worker rebuilds the
// Plan from, and the fingerprints that prove coordinator and worker
// built the same one.
type PhaseSpec struct {
	ID        int               `json:"id"`
	Phase     string            `json:"phase"`
	Domains   []string          `json:"domains"`
	Countries []geo.CountryCode `json:"countries"`
	Tasks     []scanner.Task    `json:"tasks"`
	Config    ConfigWire        `json:"config"`
	// Fingerprint is the coordinator's Plan.Fingerprint for this phase.
	Fingerprint uint64 `json:"fingerprint"`
	// Units is the plan's unit count.
	Units int `json:"units"`
	// WorldClock is the coordinator world's policy clock at phase start.
	// Studies advance the clock between phases (policies flap as time
	// passes); workers set their regenerated world to this value before
	// executing any of the phase's units.
	WorldClock int64 `json:"world_clock"`
	// Trace is the coordinator-issued scan-level trace context. Workers
	// pin it as Config.TraceCtx, so the per-unit contexts they derive —
	// and every ID on every shipped event — match what an in-process
	// run would have stamped. Zero means the coordinator is not
	// tracing.
	Trace trace.SpanCtx `json:"trace"`
}

// Lease grant statuses.
const (
	// StatusUnit: a unit was leased; execute it.
	StatusUnit = "unit"
	// StatusWait: no work right now (between phases, or every pending
	// unit is leased); poll again after RetryMillis.
	StatusWait = "wait"
	// StatusStudyDone: the study is over; the worker may exit.
	StatusStudyDone = "study-done"
)

// DefaultLeaseBatch is how many units a worker asks for per lease
// round trip. Units are small (a shard of ~32 tasks executes in
// milliseconds on the simulated net), so per-unit leasing makes the
// coordinator round trip the dominant cost and workers spend their
// time waiting on HTTP instead of scanning — the BENCH_6 regression.
// Batching amortizes one round trip over K units.
const DefaultLeaseBatch = 16

// MaxLeaseBatch caps what a single request may ask for, so one greedy
// worker cannot drain a phase and starve the rest.
const MaxLeaseBatch = 64

// LeaseRequest asks the coordinator for work. Max is the largest batch
// the worker wants in this round trip; 0 means 1.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// UnitLease is one leased unit inside a grant.
type UnitLease struct {
	Seq   int    `json:"seq"`
	Lease uint64 `json:"lease"`
	// Fingerprint is the coordinator's fingerprint for the leased unit;
	// the worker refuses the lease if its own plan disagrees.
	Fingerprint uint64 `json:"fingerprint"`
	// Span is the coordinator-derived span ID for the unit — redundant
	// with the derivation the worker performs from PhaseSpec.Trace, and
	// carried precisely so that redundancy is checkable: the worker
	// errors if the two disagree, the same trust-but-verify posture as
	// the fingerprints. Zero when the coordinator is not tracing.
	Span trace.ID `json:"span,omitempty"`
}

// unitPayload is what rides Checkpoint.Metrics across the wire in a
// completion: the unit's full staged metrics snapshot (embedded, so an
// untraced payload's JSON is exactly the bare snapshot) plus its trace
// events. Transport only — the coordinator journal re-derives its
// deterministic checkpoint view from the rehydrated staging registry,
// so these bytes never land in a segment file.
type unitPayload struct {
	telemetry.Snapshot
	Trace []trace.Event `json:"trace,omitempty"`
}

// LeaseGrant is the coordinator's answer to a lease request.
type LeaseGrant struct {
	Status string `json:"status"`
	// Set when Status is StatusUnit: the phase the units belong to and
	// the batch itself, in canonical (ascending seq) order.
	Phase     int         `json:"phase,omitempty"`
	Units     []UnitLease `json:"units,omitempty"`
	TTLMillis int64       `json:"ttl_millis,omitempty"`
	// Set when Status is StatusWait.
	RetryMillis int64 `json:"retry_millis,omitempty"`
}

// ExtendRequest refreshes a held lease (a worker about to start long
// work calls it so a slow plan rebuild does not cost it the lease).
type ExtendRequest struct {
	Worker string `json:"worker"`
	Phase  int    `json:"phase"`
	Seq    int    `json:"seq"`
	Lease  uint64 `json:"lease"`
}

// Ack is the coordinator's answer to extend and complete calls. OK
// false with a Status explains why the call did not land — a stale
// phase or an expired lease is a normal fabric event, not an error.
type Ack struct {
	OK     bool   `json:"ok"`
	Status string `json:"status,omitempty"`
}
