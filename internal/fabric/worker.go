// The worker loop: regenerate the coordinator's world, lease units,
// execute them through the engine's session and fetcher layers, and
// stream each result back as runstore-framed records.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"geoblock/internal/faults"
	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/runstore"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/worldgen"
)

// Worker-side runtime metric names.
const (
	MetWorkerUnits = "fabric.worker.units_executed"
	MetWorkerWaits = "fabric.worker.waits"
)

// ErrKilled is returned by Worker.Run when the chaos kill hook fires:
// the worker dies mid-shard without reporting its completed unit, so
// the lease expires and the coordinator re-issues the work.
var ErrKilled = errors.New("fabric: worker killed by chaos hook")

// errStalePhase marks a benign race: the phase the worker was chasing
// ended between the lease grant and the spec fetch. The loop re-leases.
var errStalePhase = errors.New("fabric: phase no longer active")

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name identifies this worker in leases and logs.
	Name string
	// Client is the HTTP client for coordinator calls; nil uses
	// http.DefaultClient.
	Client *http.Client
	// Sleep is called with the coordinator-suggested backoff when no
	// work is available; nil never sleeps (tests yield instead).
	Sleep func(time.Duration)
	// Kill, when non-nil, is consulted after every executed unit with
	// the running count; returning true kills the worker with ErrKilled
	// BEFORE the unit's completion is reported — the chaos path that
	// forces a lease expiry and re-issue.
	Kill func(executed int64) bool
	// Metrics, when non-nil, receives worker-side runtime counters.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives the worker's own runtime-class
	// events (unit executions, the chaos kill) and arms its flight
	// recorder — the worker-local view of a run whose deterministic
	// events ship upstream in completions regardless.
	Trace *trace.Tracer
	// Log, when non-nil, receives worker progress lines.
	Log func(format string, args ...any)
}

// Worker executes leased units against its own regenerated copy of the
// study's world. One Worker is one process's loop; run several
// processes against one coordinator to distribute a study.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	world  *worldgen.World
	net    *proxy.Network

	// Cached phase state: the fabric runs one phase at a time, so one
	// slot suffices.
	phaseID  int
	plan     *scanner.Plan
	traceCtx trace.SpanCtx // the phase's coordinator-issued scan context

	executed int64
}

// NewWorker dials the coordinator, fetches the study spec, and
// regenerates the world (and fault injector, if the study runs a chaos
// profile) the coordinator described. The returned worker holds no
// lease yet; Run drives the loop.
func NewWorker(ctx context.Context, opts WorkerOptions) (*Worker, error) {
	w := &Worker{opts: opts, client: opts.Client}
	if w.client == nil {
		w.client = http.DefaultClient
	}
	var spec StudySpec
	if err := w.getJSON(ctx, PathStudy, &spec); err != nil {
		return nil, fmt.Errorf("fabric: fetching study spec: %w", err)
	}
	w.world = worldgen.Generate(spec.World)
	w.net = proxy.NewNetwork(w.world)
	if f := spec.Faults; f != nil {
		prof, ok := faults.Named(f.Profile)
		if !ok {
			return nil, fmt.Errorf("fabric: study names unknown fault profile %q", f.Profile)
		}
		// The injector stays uninstrumented on workers: fault verdicts are
		// pure functions of (seed, arguments) so every process draws the
		// same faults, but instrumenting them here would stage fault
		// counters into unit snapshots that an in-process run records only
		// once, globally — and the journal bytes would diverge.
		inj := faults.New(f.Seed)
		if f.Country != "" {
			inj.Country(geo.CountryCode(f.Country), prof)
		} else {
			inj.Default(prof)
		}
		w.net.SetFaults(inj)
	}
	w.logf("fabric worker %s: world regenerated (%d top-10k domains)", opts.Name, len(w.world.Top10K()))
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Log != nil {
		w.opts.Log(format, args...)
	}
}

func (w *Worker) sleep(d time.Duration) {
	if w.opts.Sleep != nil {
		w.opts.Sleep(d)
	}
}

// unitEvent records one worker-local runtime event. The worker's
// tracer is pure observability — deterministic unit events ship
// upstream in completions; this local stream (and the flight ring it
// feeds) is what a dying worker dumps.
func (w *Worker) unitEvent(name string, seq int, outcome string) {
	if w.opts.Trace == nil || !w.traceCtx.Valid() {
		return
	}
	ev := trace.NewEvent(w.traceCtx.Child(name, seq), name)
	ev.Parent = w.traceCtx.Span
	ev.Unit = seq
	ev.Outcome = outcome
	ev.Runtime = true
	_, ev.WallNS = w.opts.Trace.Now()
	ev.Attrs = []trace.Attr{{K: "worker", V: w.opts.Name}}
	w.opts.Trace.Record(ev)
}

// Run leases and executes units until the coordinator reports the
// study done (returns nil), ctx is cancelled, the kill hook fires
// (ErrKilled), or the fabric disagrees with this worker's world — a
// fingerprint mismatch is a hard error, never retried, because it
// means the two processes would journal different bytes.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var grant LeaseGrant
		if err := w.postJSON(ctx, PathLease, LeaseRequest{Worker: w.opts.Name, Max: DefaultLeaseBatch}, &grant); err != nil {
			return fmt.Errorf("fabric: leasing: %w", err)
		}
		switch grant.Status {
		case StatusStudyDone:
			w.logf("fabric worker %s: study done after %d units", w.opts.Name, w.executed)
			return nil
		case StatusWait:
			w.opts.Metrics.RuntimeCounter(MetWorkerWaits).Add(1)
			w.sleep(time.Duration(grant.RetryMillis) * time.Millisecond)
			continue
		case StatusUnit:
			if err := w.runBatch(ctx, grant); err != nil {
				if errors.Is(err, errStalePhase) {
					continue
				}
				return err
			}
		default:
			return fmt.Errorf("fabric: coordinator answered unknown lease status %q", grant.Status)
		}
	}
}

// runBatch executes every unit in a grant, in grant order. A stale
// phase mid-batch abandons the rest of the batch (their leases expire
// and the units re-issue — but in practice the phase is gone anyway).
func (w *Worker) runBatch(ctx context.Context, grant LeaseGrant) error {
	rebuilt, err := w.ensurePhase(ctx, grant.Phase)
	if err != nil {
		return err
	}
	if rebuilt && len(grant.Units) > 0 {
		// The plan rebuild may have eaten into the batch's TTLs; refresh
		// the LAST unit's lease — it waits the longest — so the tail of the
		// batch is not re-issued while we are still working the head. A
		// stale answer is fine: completions from expired leases are still
		// accepted, re-runs are deterministic no-ops.
		last := grant.Units[len(grant.Units)-1]
		var ack Ack
		_ = w.postJSON(ctx, PathExtend, ExtendRequest{Worker: w.opts.Name, Phase: grant.Phase, Seq: last.Seq, Lease: last.Lease}, &ack)
	}
	for _, u := range grant.Units {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := w.runUnit(ctx, grant.Phase, u); err != nil {
			return err
		}
	}
	return nil
}

// runUnit executes one leased unit end to end: fingerprint check,
// engine execution, chaos hook, completion report.
func (w *Worker) runUnit(ctx context.Context, phase int, lease UnitLease) error {
	unit := w.plan.Unit(lease.Seq)
	if unit.Fingerprint != lease.Fingerprint {
		return fmt.Errorf("fabric: unit %d fingerprint mismatch (coordinator %x, worker %x) — the two processes built different worlds", lease.Seq, lease.Fingerprint, unit.Fingerprint)
	}
	if lease.Span != 0 && w.traceCtx.Valid() {
		// Same trust-but-verify posture as the fingerprints: the span the
		// coordinator derived for this unit must equal the one we derive.
		if want := scanner.UnitTraceCtx(w.traceCtx, lease.Seq).Span; want != lease.Span {
			return fmt.Errorf("fabric: unit %d trace span mismatch (coordinator %s, worker %s) — the two processes derive different trace IDs", lease.Seq, lease.Span, want)
		}
	}
	res, err := w.plan.ExecuteUnit(ctx, w.net, lease.Seq)
	if err != nil {
		return err
	}
	w.executed++
	w.opts.Metrics.RuntimeCounter(MetWorkerUnits).Add(1)
	// Mirror the unit's events into the local flight ring, then stamp
	// the execution itself.
	w.opts.Trace.Append(res.Trace)
	w.unitEvent("worker.exec", lease.Seq, "ok")
	if w.opts.Kill != nil && w.opts.Kill(w.executed) {
		// Die before reporting: the unit's lease expires and the
		// coordinator re-issues it to a surviving worker. The flight
		// recorder fires on the way down — the worker-death dump the
		// tentpole promises.
		w.logf("fabric worker %s: chaos kill after unit %d", w.opts.Name, lease.Seq)
		w.unitEvent("worker.kill", lease.Seq, "killed")
		w.opts.Trace.Trigger("worker " + w.opts.Name + " killed by chaos hook")
		return ErrKilled
	}

	// The full staged snapshot and the unit's trace events cross the
	// wire so the coordinator's live registry merge and merged timeline
	// match an in-process run; the journal keeps only its deterministic
	// view.
	pl := unitPayload{Trace: res.Trace}
	if res.Metrics != nil {
		pl.Snapshot = *res.Metrics
	}
	mb, err := json.Marshal(pl)
	if err != nil {
		return fmt.Errorf("fabric: encoding unit metrics: %w", err)
	}
	cp := runstore.Checkpoint{
		Seq:     lease.Seq,
		Country: unit.Country,
		Tasks:   unit.Tasks,
		Samples: len(res.Samples),
		Lost:    res.Lost,
		Metrics: mb,
	}
	payload := runstore.EncodeShardFrames(res.Samples, cp)
	q := "?phase=" + strconv.Itoa(phase) +
		"&seq=" + strconv.Itoa(lease.Seq) +
		"&lease=" + strconv.FormatUint(lease.Lease, 10) +
		"&fp=" + strconv.FormatUint(unit.Fingerprint, 10) +
		"&worker=" + w.opts.Name
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+PathComplete+q, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("fabric: reporting unit %d: %w", lease.Seq, err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: coordinator rejected unit %d: %s: %s", lease.Seq, resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// ensurePhase rebuilds and caches the plan for phase id, verifying the
// plan fingerprint and unit count against the coordinator's spec. The
// returned bool reports whether a rebuild actually happened (a rebuild
// is the one slow step worth spending a lease extension on).
func (w *Worker) ensurePhase(ctx context.Context, id int) (bool, error) {
	if w.plan != nil && w.phaseID == id {
		return false, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.opts.Coordinator+PathPhase+strconv.Itoa(id), nil)
	if err != nil {
		return false, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return false, fmt.Errorf("fabric: fetching phase %d spec: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return false, errStalePhase
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("fabric: fetching phase %d spec: %s", id, resp.Status)
	}
	var spec PhaseSpec
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return false, fmt.Errorf("fabric: decoding phase %d spec: %w", id, err)
	}
	cfg := spec.Config.Config()
	if spec.Trace.Valid() {
		// Pin the coordinator-issued scan context so every unit context
		// (and every event ID) derives identically here and there. The
		// trace fields never enter the plan fingerprint — tracing is
		// output-invariant, like Concurrency.
		cfg.TraceCtx = spec.Trace
		cfg.TraceWall = w.opts.Trace.WallClock()
	}
	plan := scanner.NewPlan(spec.Domains, spec.Countries, spec.Tasks, cfg)
	if got := plan.Fingerprint(); got != spec.Fingerprint {
		return false, fmt.Errorf("fabric: phase %d plan fingerprint mismatch (coordinator %x, worker %x) — the two processes built different plans", id, spec.Fingerprint, got)
	}
	if plan.NumUnits() != spec.Units {
		return false, fmt.Errorf("fabric: phase %d unit count mismatch (coordinator %d, worker %d)", id, spec.Units, plan.NumUnits())
	}
	// Catch the worker's world up to the coordinator's policy clock —
	// the pipeline advances it between phases, and national policies
	// flap with it.
	w.world.AdvanceClock(spec.WorldClock - w.world.Clock())
	w.phaseID, w.plan, w.traceCtx = id, plan, spec.Trace
	w.logf("fabric worker %s: phase %d (%s): plan agreed, %d units", w.opts.Name, id, spec.Phase, spec.Units)
	return true, nil
}

// getJSON GETs path off the coordinator and decodes the JSON answer.
func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.opts.Coordinator+path, nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON POSTs a JSON body to path and decodes the JSON answer.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
