// Package fabric is the distributed scan fabric: a coordinator that
// leases the deterministic shard engine's work units to N worker
// processes over HTTP and reassembles their completions into the
// engine's canonical-order output — byte-identical to a single-process
// run, journal included.
//
// The design leans entirely on the engine's determinism contract.
// Shard boundaries, session slots, and per-sample seeds are pure
// functions of the scan inputs, so a unit executes identically on any
// worker, any number of times. That turns every hard distributed-
// systems problem here into bookkeeping: a lost worker is a lease that
// expires and a unit that runs again; a duplicate completion is a
// no-op; and the reorder frontier (scanner.Assembly) guarantees the
// sink — and through the journaling sink, the runstore segment files —
// sees the exact byte stream an in-process run produces.
//
// Lease state machine, per unit:
//
//	pending ──lease──▶ leased ──complete──▶ done
//	   ▲                  │
//	   └──── TTL expiry ──┘  (re-issue; late completes still accepted)
//
// Completions are validated (CRC-framed records, unit fingerprint,
// checkpoint shape) and accepted from expired leases too — the work is
// deterministic, so whoever finishes first wins and everyone else is a
// duplicate.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geoblock/internal/geo"
	"geoblock/internal/runstore"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/worldgen"
)

// Fabric metric names. All runtime-class: lease traffic depends on
// worker count and timing, never on the scan inputs, and must not
// pollute the deterministic snapshot the matrix byte-compares.
const (
	MetLeases     = "fabric.leases_granted"
	MetWaits      = "fabric.lease_waits"
	MetReissues   = "fabric.lease_reissues"
	MetCompletes  = "fabric.units_completed"
	MetDuplicates = "fabric.duplicate_completes"
	MetStale      = "fabric.stale_lease_completes"
)

// DefaultLeaseTTL bounds how long a worker may sit on a unit before
// the coordinator re-issues it.
const DefaultLeaseTTL = 30 * time.Second

// DefaultRetryMillis is how long a worker is told to wait before
// re-polling when no work is available.
const DefaultRetryMillis = 200

// Options configures a Coordinator.
type Options struct {
	// Study carries the world calibration (and optional fault profile)
	// workers regenerate the coordinator's world from.
	Study StudySpec
	// LeaseTTL is the lease duration. Zero takes DefaultLeaseTTL;
	// negative makes every lease instantly expirable — with a virtual
	// clock, the deterministic way to exercise re-issue without waiting.
	LeaseTTL time.Duration
	// Clock drives lease deadlines. Nil falls back to Metrics.Clock(),
	// then to a virtual clock (tests advance it by hand).
	Clock telemetry.Clock
	// Metrics, when non-nil, receives the fabric's runtime-class lease
	// counters.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives the fabric's runtime-class lease
	// events and becomes the default tracer for phases whose config
	// carries none — the merged timeline a 3-process run exports.
	Trace *trace.Tracer
	// Log, when non-nil, receives fabric progress lines.
	Log func(format string, args ...any)
}

// unitState tracks one work unit through the lease state machine.
type unitState struct {
	leased    bool
	lease     uint64
	worker    string
	deadline  time.Time
	completed bool
}

// phaseRun is one scan phase in flight.
type phaseRun struct {
	id        int
	plan      *scanner.Plan
	asm       *scanner.Assembly
	specJSON  []byte
	order     []int // pending unit seqs, canonical order
	units     map[int]*unitState
	remaining int
	done      chan struct{}
	err       error
	// tr/traceCtx/phaseName key the runtime-class lease events the
	// coordinator records for this phase's traffic.
	tr        *trace.Tracer
	traceCtx  trace.SpanCtx
	phaseName string
}

// leaseEvent records one runtime-class protocol event for the phase —
// lease grants, re-issues, completions arriving. Runtime by
// definition: which worker leases which unit when depends entirely on
// scheduling, so these never enter the deterministic view.
func (ph *phaseRun) leaseEvent(name string, seq int, worker, outcome string, wallNS int64) {
	if ph.tr == nil || !ph.traceCtx.Valid() {
		return
	}
	ev := trace.NewEvent(ph.traceCtx.Child(name, seq), name)
	ev.Parent = ph.traceCtx.Span
	ev.Unit = seq
	ev.Phase = ph.phaseName
	ev.Outcome = outcome
	ev.Runtime = true
	ev.WallNS = wallNS
	ev.Attrs = []trace.Attr{{K: "worker", V: worker}}
	ph.tr.Record(ev)
}

// Coordinator owns a study's distribution: it serves the study and
// phase specs, leases units, and folds completions through a
// scanner.Assembly into the caller's sink. One Coordinator serves one
// study; phases run strictly one at a time (RunPhase blocks until its
// phase drains, exactly like the in-process engine call it replaces).
type Coordinator struct {
	opts  Options
	clock telemetry.Clock
	ttl   time.Duration
	world *worldgen.World

	mu        sync.Mutex
	nextLease uint64
	phaseSeq  int
	phase     *phaseRun
	studyDone bool
}

// New builds a coordinator for one study.
func New(opts Options) *Coordinator {
	clock := opts.Clock
	if clock == nil {
		clock = opts.Metrics.Clock()
	}
	if clock == nil {
		clock = telemetry.NewVirtual()
	}
	ttl := opts.LeaseTTL
	if ttl == 0 {
		ttl = DefaultLeaseTTL
	}
	return &Coordinator{opts: opts, clock: clock, ttl: ttl}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log(format, args...)
	}
}

func (c *Coordinator) count(name string) {
	c.opts.Metrics.RuntimeCounter(name).Add(1)
}

// RunPhase executes one scan phase through the fabric: it builds the
// plan and assembly, publishes the phase to workers, and blocks until
// every unit has been leased, executed, and reassembled — or ctx is
// cancelled. The signature matches the engine seam the pipeline's
// scanStream drives (and composes with runstore resume: cfg.Resume's
// prefix is never leased).
func (c *Coordinator) RunPhase(ctx context.Context, domains []string, countries []geo.CountryCode, tasks []scanner.Task, cfg scanner.Config, sink scanner.Sink) error {
	wire, err := NewConfigWire(cfg)
	if err != nil {
		return err
	}
	if cfg.Trace == nil && c.opts.Trace != nil {
		// The coordinator's tracer backs phases that arrived untraced, so
		// `lumscan -serve-fabric -trace` captures the whole study without
		// the caller threading a tracer through every phase config.
		cfg.Trace = c.opts.Trace
		cfg.TraceWall = c.opts.Trace.WallClock()
	}
	plan := scanner.NewPlan(domains, countries, tasks, cfg)
	asm, err := scanner.NewAssembly(plan, sink)
	if err != nil {
		return err
	}
	pending := asm.Pending()
	if len(pending) == 0 {
		// Fully resumed (or empty) phase: nothing to distribute, just the
		// engine's end-of-run accounting.
		return asm.Finish()
	}

	c.mu.Lock()
	if c.phase != nil {
		c.mu.Unlock()
		return fmt.Errorf("fabric: phase %q started while phase %d still running", cfg.Phase, c.phase.id)
	}
	if c.studyDone {
		c.mu.Unlock()
		return fmt.Errorf("fabric: phase %q started after FinishStudy", cfg.Phase)
	}
	c.phaseSeq++
	ph := &phaseRun{
		id:        c.phaseSeq,
		plan:      plan,
		asm:       asm,
		order:     pending,
		units:     make(map[int]*unitState, len(pending)),
		remaining: len(pending),
		done:      make(chan struct{}),
	}
	for _, seq := range pending {
		ph.units[seq] = &unitState{}
	}
	ph.tr = cfg.Trace
	ph.traceCtx = scanner.ScanTraceCtx(cfg)
	ph.phaseName = cfg.Phase
	spec := PhaseSpec{
		ID:          ph.id,
		Phase:       cfg.Phase,
		Domains:     domains,
		Countries:   countries,
		Tasks:       tasks,
		Config:      wire,
		Fingerprint: plan.Fingerprint(),
		Units:       plan.NumUnits(),
		Trace:       ph.traceCtx,
	}
	if c.world != nil {
		spec.WorldClock = c.world.Clock()
	}
	ph.specJSON, err = json.Marshal(spec)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.phase = ph
	c.mu.Unlock()
	c.logf("fabric: phase %d (%s): %d units pending (%d resumed)", ph.id, cfg.Phase, len(pending), plan.NumUnits()-len(pending))

	select {
	case <-ph.done:
	case <-ctx.Done():
		c.mu.Lock()
		c.phase = nil
		c.mu.Unlock()
		asm.Abort()
		return ctx.Err()
	}
	c.mu.Lock()
	c.phase = nil
	c.mu.Unlock()
	return ph.err
}

// BindWorld attaches the study's live world, so each phase spec can
// carry the world's policy clock at phase start (the pipeline advances
// it between phases, and workers must observe the same policies).
// geoblock.New calls this when Options.Fabric is set.
func (c *Coordinator) BindWorld(w *worldgen.World) {
	c.mu.Lock()
	c.world = w
	c.mu.Unlock()
}

// FinishStudy tells workers the study is over: subsequent lease
// requests answer StatusStudyDone and workers exit cleanly.
func (c *Coordinator) FinishStudy() {
	c.mu.Lock()
	c.studyDone = true
	c.mu.Unlock()
	c.logf("fabric: study finished")
}

// Handler serves the fabric protocol.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathStudy, c.handleStudy)
	mux.HandleFunc(PathPhase, c.handlePhase)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathExtend, c.handleExtend)
	mux.HandleFunc(PathComplete, c.handleComplete)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleStudy(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.opts.Study)
}

func (c *Coordinator) handlePhase(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Path[len(PathPhase):])
	if err != nil {
		http.Error(w, "fabric: bad phase id", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	ph := c.phase
	c.mu.Unlock()
	if ph == nil || ph.id != id {
		http.Error(w, fmt.Sprintf("fabric: phase %d is not active", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(ph.specJSON)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "fabric: bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ph := c.phase
	if ph == nil || ph.remaining == 0 {
		if c.studyDone {
			writeJSON(w, LeaseGrant{Status: StatusStudyDone})
			return
		}
		c.count(MetWaits)
		writeJSON(w, LeaseGrant{Status: StatusWait, RetryMillis: DefaultRetryMillis})
		return
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	if max > MaxLeaseBatch {
		max = MaxLeaseBatch
	}
	// Pick candidates BEFORE touching any lease state: units never
	// leased first, then expired leases — both in canonical
	// (lowest-seq-first) order, which keeps the reorder frontier short so
	// completed samples stream out instead of piling up in the buffer.
	// The two passes must finish before any grant mutates state: with an
	// instantly-expirable TTL (LeaseTTL < 0, the deterministic re-issue
	// test mode) a grant made by this very request would otherwise look
	// expired to the second pass and hand the same unit out twice.
	picks := make([]int, 0, max)
	for _, seq := range ph.order {
		u := ph.units[seq]
		if !u.completed && !u.leased {
			picks = append(picks, seq)
			if len(picks) == max {
				break
			}
		}
	}
	expiredFrom := len(picks)
	if len(picks) < max {
		for _, seq := range ph.order {
			u := ph.units[seq]
			if u.completed || !u.leased || now.Before(u.deadline) {
				continue
			}
			picks = append(picks, seq)
			if len(picks) == max {
				break
			}
		}
	}
	if len(picks) == 0 {
		c.count(MetWaits)
		writeJSON(w, LeaseGrant{Status: StatusWait, RetryMillis: DefaultRetryMillis})
		return
	}
	units := make([]UnitLease, 0, len(picks))
	var wallNS int64
	if ph.tr != nil {
		_, wallNS = ph.tr.Now()
	}
	for i, seq := range picks {
		u := ph.units[seq]
		outcome := "granted"
		if i >= expiredFrom {
			c.count(MetReissues)
			c.logf("fabric: phase %d unit %d lease expired (worker %s); re-issuing", ph.id, seq, u.worker)
			outcome = "reissued"
		}
		c.nextLease++
		u.leased, u.lease, u.worker = true, c.nextLease, req.Worker
		u.deadline = now.Add(c.ttl)
		c.count(MetLeases)
		ph.leaseEvent("lease", seq, req.Worker, outcome, wallNS)
		units = append(units, UnitLease{
			Seq:         seq,
			Lease:       u.lease,
			Fingerprint: ph.plan.Unit(seq).Fingerprint,
			Span:        scanner.UnitTraceCtx(ph.traceCtx, seq).Span,
		})
	}
	writeJSON(w, LeaseGrant{
		Status:    StatusUnit,
		Phase:     ph.id,
		Units:     units,
		TTLMillis: c.ttl.Milliseconds(),
	})
}

func (c *Coordinator) handleExtend(w http.ResponseWriter, r *http.Request) {
	var req ExtendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "fabric: bad extend request: "+err.Error(), http.StatusBadRequest)
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ph := c.phase
	if ph == nil || ph.id != req.Phase {
		writeJSON(w, Ack{OK: false, Status: "stale-phase"})
		return
	}
	u := ph.units[req.Seq]
	if u == nil || !u.leased || u.lease != req.Lease || u.completed {
		writeJSON(w, Ack{OK: false, Status: "stale-lease"})
		return
	}
	u.deadline = now.Add(c.ttl)
	writeJSON(w, Ack{OK: true})
}

// handleComplete accepts one executed unit: CRC-framed sample and
// checkpoint records in the body, identity in the query string. The
// unit folds through the Assembly under the coordinator lock, so sink
// delivery (and journaling) stays strictly serialized.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	phaseID, err1 := strconv.Atoi(q.Get("phase"))
	seq, err2 := strconv.Atoi(q.Get("seq"))
	lease, err3 := strconv.ParseUint(q.Get("lease"), 10, 64)
	fp, err4 := strconv.ParseUint(q.Get("fp"), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		http.Error(w, "fabric: bad complete parameters", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "fabric: reading completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	samples, cp, err := runstore.DecodeShardFrames(body)
	if err != nil {
		http.Error(w, "fabric: rejecting completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	if cp.Seq != seq {
		http.Error(w, fmt.Sprintf("fabric: checkpoint seq %d does not match completion seq %d", cp.Seq, seq), http.StatusBadRequest)
		return
	}
	res := scanner.UnitResult{Samples: samples, Lost: cp.Lost}
	if len(cp.Metrics) > 0 {
		// The wire payload is the staged snapshot plus the unit's trace
		// events (see unitPayload) — transport only, never journaled.
		var pl unitPayload
		if err := json.Unmarshal(cp.Metrics, &pl); err != nil {
			http.Error(w, "fabric: bad completion metrics: "+err.Error(), http.StatusBadRequest)
			return
		}
		res.Metrics = &pl.Snapshot
		res.Trace = pl.Trace
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	ph := c.phase
	if ph == nil || ph.id != phaseID {
		writeJSON(w, Ack{OK: false, Status: "stale-phase"})
		return
	}
	u := ph.units[seq]
	if u == nil {
		http.Error(w, fmt.Sprintf("fabric: unit %d is not pending in phase %d", seq, phaseID), http.StatusBadRequest)
		return
	}
	if want := ph.plan.Unit(seq).Fingerprint; want != fp {
		http.Error(w, fmt.Sprintf("fabric: unit %d fingerprint %x does not match plan's %x — worker built a different world", seq, fp, want), http.StatusConflict)
		return
	}
	var wallNS int64
	if ph.tr != nil {
		_, wallNS = ph.tr.Now()
	}
	worker := q.Get("worker")
	if u.completed {
		// Deterministic work: a re-issued unit's second completion is
		// byte-identical to the first, so dropping it loses nothing.
		c.count(MetDuplicates)
		ph.leaseEvent("unit.complete", seq, worker, "duplicate", wallNS)
		writeJSON(w, Ack{OK: true, Status: "duplicate"})
		return
	}
	if !u.leased || u.lease != lease {
		// The lease expired and was re-issued, but this worker finished
		// anyway. The result is just as valid — first completion wins.
		c.count(MetStale)
		ph.leaseEvent("unit.complete", seq, worker, "stale-lease", wallNS)
	} else {
		ph.leaseEvent("unit.complete", seq, worker, "ok", wallNS)
	}
	if err := ph.asm.Complete(seq, res); err != nil {
		http.Error(w, "fabric: "+err.Error(), http.StatusConflict)
		return
	}
	u.completed = true
	ph.remaining--
	c.count(MetCompletes)
	if ph.remaining == 0 {
		ph.err = ph.asm.Finish()
		close(ph.done)
	}
	writeJSON(w, Ack{OK: true})
}
