package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"geoblock/internal/faults"
	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/runstore"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
	"geoblock/internal/worldgen"
)

var (
	testWorld = worldgen.Generate(worldgen.TestConfig())
	testNet   = proxy.NewNetwork(testWorld)
)

// yield is the test worker's Sleep hook: no wall-clock waiting, just a
// scheduler yield so the poll loop stays deterministic-friendly.
func yield(time.Duration) { runtime.Gosched() }

// fabricInputs is a scan small enough to run in every matrix cell but
// large enough to shard across several units per country.
func fabricInputs() ([]string, []geo.CountryCode, []scanner.Task, scanner.Config) {
	var domains []string
	for _, d := range testWorld.Top10K()[:30] {
		domains = append(domains, d.Name)
	}
	countries := []geo.CountryCode{"US", "DE", "IR", "SY", "BR"}
	tasks := scanner.CrossProduct(len(domains), len(countries))
	cfg := scanner.Config{
		Samples:            2,
		Retries:            2,
		RequestsPerExit:    10,
		MaxRedirects:       10,
		ShardSize:          8,
		Headers:            scanner.BrowserHeaders(),
		Phase:              "initial",
		VerifyConnectivity: true,
	}
	return domains, countries, tasks, cfg
}

// runReference runs the phase through the in-process engine at the
// given concurrency.
func runReference(t *testing.T, concurrency int) (*scanner.Collect, string) {
	t.Helper()
	domains, countries, tasks, cfg := fabricInputs()
	reg := telemetry.New()
	cfg.Metrics = reg
	cfg.Concurrency = concurrency
	col := &scanner.Collect{}
	if err := scanner.Run(context.Background(), testNet, domains, countries, tasks, cfg, col); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return col, reg.Snapshot().Deterministic().Text()
}

// runFabric runs the same phase through a coordinator and nWorkers
// workers. When kill is set, one extra worker executes a unit, dies via
// the WorkerDeath chaos hook before reporting it, and the survivors
// pick up its expired lease.
func runFabric(t *testing.T, nWorkers int, kill bool) (*scanner.Collect, string) {
	t.Helper()
	domains, countries, tasks, cfg := fabricInputs()
	reg := telemetry.New()
	cfg.Metrics = reg
	coord := New(Options{
		Study:    StudySpec{World: worldgen.TestConfig()},
		LeaseTTL: -1, // every lease instantly re-issuable: no waiting on wall clocks
		Metrics:  reg,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	col := &scanner.Collect{}
	var wg sync.WaitGroup
	phaseErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		phaseErr <- coord.RunPhase(ctx, domains, countries, tasks, cfg, col)
	}()

	if kill {
		// The victim runs synchronously: it leases a unit, executes it,
		// and dies before reporting — deterministically, before any
		// survivor is started.
		victim, err := NewWorker(ctx, WorkerOptions{
			Coordinator: srv.URL, Name: "victim", Sleep: yield,
			Kill: faults.New(7).WorkerDeath(1),
		})
		if err != nil {
			t.Fatalf("victim worker: %v", err)
		}
		if err := victim.Run(ctx); !errors.Is(err, ErrKilled) {
			t.Fatalf("victim died with %v, want ErrKilled", err)
		}
	}

	workerErrs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(ctx, WorkerOptions{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("w%d", i),
				Sleep:       yield,
			})
			if err != nil {
				workerErrs[i] = err
				return
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}

	if err := <-phaseErr; err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	coord.FinishStudy()
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return col, reg.Snapshot().Deterministic().Text()
}

// TestFabricByteIdentity is the core guarantee: the fabric's merged
// output — samples, outages, coverage, deterministic telemetry — is
// identical to the in-process engine's, at any worker count, at any
// reference concurrency, and across a worker death mid-shard.
func TestFabricByteIdentity(t *testing.T) {
	refCol, refSnap := runReference(t, 1)
	for _, conc := range []int{4, 32} {
		col, snap := runReference(t, conc)
		if !reflect.DeepEqual(col, refCol) || snap != refSnap {
			t.Fatalf("in-process run at concurrency %d diverges from concurrency 1", conc)
		}
	}
	for _, tc := range []struct {
		workers int
		kill    bool
	}{{1, false}, {2, true}, {4, true}} {
		col, snap := runFabric(t, tc.workers, tc.kill)
		if !reflect.DeepEqual(col.Samples, refCol.Samples) {
			t.Fatalf("workers=%d kill=%v: samples diverge (%d vs %d)", tc.workers, tc.kill, len(col.Samples), len(refCol.Samples))
		}
		if !reflect.DeepEqual(col.Outages, refCol.Outages) {
			t.Fatalf("workers=%d kill=%v: outages diverge", tc.workers, tc.kill)
		}
		if !reflect.DeepEqual(col.Coverage, refCol.Coverage) {
			t.Fatalf("workers=%d kill=%v: coverage diverges", tc.workers, tc.kill)
		}
		if snap != refSnap {
			t.Fatalf("workers=%d kill=%v: deterministic snapshots diverge:\n%s\n---\n%s", tc.workers, tc.kill, snap, refSnap)
		}
	}
}

// TestLeaseLifecycle drives the lease state machine by hand: grants
// hand out distinct units in canonical order, extends refresh
// deadlines, expiry re-issues, and stale leases are refused.
func TestLeaseLifecycle(t *testing.T) {
	domains, countries, tasks, cfg := fabricInputs()
	clock := telemetry.NewVirtual()
	coord := New(Options{
		Study:    StudySpec{World: worldgen.TestConfig()},
		LeaseTTL: 10 * time.Second,
		Clock:    clock,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	phaseErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		phaseErr <- coord.RunPhase(ctx, domains, countries, tasks, cfg, &scanner.Collect{})
	}()

	// A bare client for protocol-level poking. Max 1 keeps the
	// state-machine walk single-step; the batch shape gets its own
	// assertions below.
	w := &Worker{opts: WorkerOptions{Coordinator: srv.URL, Name: "probe"}, client: http.DefaultClient}
	lease := func(max int) LeaseGrant {
		t.Helper()
		var g LeaseGrant
		// The phase installs asynchronously; wait for the first grant.
		for {
			if err := w.postJSON(ctx, PathLease, LeaseRequest{Worker: "probe", Max: max}, &g); err != nil {
				t.Fatalf("lease: %v", err)
			}
			if g.Status != StatusWait {
				return g
			}
			runtime.Gosched()
		}
	}

	g0 := lease(1)
	if g0.Status != StatusUnit || len(g0.Units) != 1 || g0.Units[0].Seq != 0 {
		t.Fatalf("first grant = %+v, want exactly unit 0", g0)
	}
	u0 := g0.Units[0]
	// A batched request takes the next units in canonical order, each
	// under its own fresh lease ID.
	gb := lease(3)
	if len(gb.Units) != 3 {
		t.Fatalf("batch grant = %+v, want 3 units", gb)
	}
	for i, u := range gb.Units {
		if u.Seq != i+1 {
			t.Fatalf("batch grant unit %d = %+v, want seq %d", i, u, i+1)
		}
		if u.Lease == u0.Lease || (i > 0 && u.Lease == gb.Units[i-1].Lease) {
			t.Fatalf("batch grant reused a lease ID: %+v", gb.Units)
		}
	}
	// Exhaust the never-leased pool; with every unit leased and live,
	// the coordinator must answer wait, not double-lease — even for an
	// oversized batch request.
	numUnits := scanner.NewPlan(domains, countries, tasks, cfg).NumUnits()
	for i := 4; i < numUnits; i++ {
		if g := lease(1); len(g.Units) != 1 || g.Units[0].Seq != i {
			t.Fatalf("grant %d = %+v, want unit %d", i, g, i)
		}
	}
	var gw LeaseGrant
	if err := w.postJSON(ctx, PathLease, LeaseRequest{Worker: "probe", Max: DefaultLeaseBatch}, &gw); err != nil || gw.Status != StatusWait {
		t.Fatalf("fully-leased phase answered %+v, want wait", gw)
	}

	var ack Ack
	if err := w.postJSON(ctx, PathExtend, ExtendRequest{Worker: "probe", Phase: g0.Phase, Seq: u0.Seq, Lease: u0.Lease}, &ack); err != nil || !ack.OK {
		t.Fatalf("extend live lease: err=%v ack=%+v", err, ack)
	}

	// Expire every lease; the next grant must re-issue unit 0 under a
	// new lease ID, and the old lease must no longer extend.
	clock.Advance(time.Minute)
	g0b := lease(1)
	if len(g0b.Units) != 1 || g0b.Units[0].Seq != 0 || g0b.Units[0].Lease == u0.Lease {
		t.Fatalf("post-expiry grant = %+v, want unit 0 re-issued", g0b)
	}
	if err := w.postJSON(ctx, PathExtend, ExtendRequest{Worker: "probe", Phase: g0.Phase, Seq: u0.Seq, Lease: u0.Lease}, &ack); err != nil || ack.OK {
		t.Fatalf("extend of superseded lease: err=%v ack=%+v, want refused", err, ack)
	}

	cancel()
	if err := <-phaseErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunPhase returned %v", err)
	}
	wg.Wait()
}

// TestCompleteIdempotency executes units by hand and checks the
// coordinator's answers: duplicates ack as duplicates, fingerprint
// mismatches are rejected, and completions from superseded leases are
// still accepted (first result wins; the work is deterministic).
func TestCompleteIdempotency(t *testing.T) {
	domains, countries, tasks, cfg := fabricInputs()
	coord := New(Options{Study: StudySpec{World: worldgen.TestConfig()}, LeaseTTL: -1})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	col := &scanner.Collect{}
	var wg sync.WaitGroup
	phaseErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		phaseErr <- coord.RunPhase(ctx, domains, countries, tasks, cfg, col)
	}()

	w := &Worker{opts: WorkerOptions{Coordinator: srv.URL, Name: "probe"}, client: http.DefaultClient, world: testWorld, net: testNet}
	var g LeaseGrant
	for {
		if err := w.postJSON(ctx, PathLease, LeaseRequest{Worker: "probe"}, &g); err != nil {
			t.Fatalf("lease: %v", err)
		}
		if g.Status == StatusUnit {
			break
		}
		runtime.Gosched()
	}
	if _, err := w.ensurePhase(ctx, g.Phase); err != nil {
		t.Fatalf("ensurePhase: %v", err)
	}
	u := g.Units[0]

	post := func(seq int, lease, fp uint64) (int, string) {
		t.Helper()
		res, err := w.plan.ExecuteUnit(ctx, testNet, seq)
		if err != nil {
			t.Fatalf("ExecuteUnit(%d): %v", seq, err)
		}
		unit := w.plan.Unit(seq)
		cp := runstore.Checkpoint{Seq: seq, Country: unit.Country, Tasks: unit.Tasks, Samples: len(res.Samples), Lost: res.Lost}
		body := runstore.EncodeShardFrames(res.Samples, cp)
		url := fmt.Sprintf("%s%s?phase=%d&seq=%d&lease=%d&fp=%d&worker=probe", srv.URL, PathComplete, g.Phase, seq, lease, fp)
		resp, err := http.Post(url, "application/octet-stream", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("post complete: %v", err)
		}
		defer resp.Body.Close()
		var ack Ack
		if resp.StatusCode == http.StatusOK {
			_ = readJSON(resp, &ack)
		}
		return resp.StatusCode, ack.Status
	}

	unit0 := w.plan.Unit(u.Seq)
	if code, _ := post(u.Seq, u.Lease, unit0.Fingerprint^1); code != http.StatusConflict {
		t.Fatalf("wrong-fingerprint complete answered %d, want 409", code)
	}
	if code, status := post(u.Seq, u.Lease, unit0.Fingerprint); code != http.StatusOK || status == "duplicate" {
		t.Fatalf("first complete answered %d/%q", code, status)
	}
	if code, status := post(u.Seq, u.Lease, unit0.Fingerprint); code != http.StatusOK || status != "duplicate" {
		t.Fatalf("second complete answered %d/%q, want duplicate ack", code, status)
	}

	// Finish the phase with a stale lease ID on every remaining unit:
	// the results are deterministic, so they must all land.
	for seq := u.Seq + 1; seq < w.plan.NumUnits(); seq++ {
		if code, status := post(seq, 0, w.plan.Unit(seq).Fingerprint); code != http.StatusOK || status == "duplicate" {
			t.Fatalf("unleased complete of unit %d answered %d/%q", seq, code, status)
		}
	}
	if err := <-phaseErr; err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	coord.FinishStudy()
	wg.Wait()

	ref, _ := runReference(t, 4)
	if !reflect.DeepEqual(col.Samples, ref.Samples) {
		t.Fatal("hand-completed phase diverges from reference")
	}
}

func readJSON(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestConfigWireRejections: process-local seams must not silently drop
// on the wire.
func TestConfigWireRejections(t *testing.T) {
	cfg := scanner.Config{KeepBody: func(int, int) bool { return true }}
	if _, err := NewConfigWire(cfg); err == nil {
		t.Fatal("ConfigWire accepted a KeepBody func")
	}
	cfg = scanner.Config{WrapTransport: func(rt http.RoundTripper) http.RoundTripper { return rt }}
	if _, err := NewConfigWire(cfg); err == nil {
		t.Fatal("ConfigWire accepted a WrapTransport middleware")
	}
}

// TestWorkerRejectsUnknownFaultProfile: a study naming a chaos profile
// this binary does not know must fail loudly, not scan fault-free.
func TestWorkerRejectsUnknownFaultProfile(t *testing.T) {
	coord := New(Options{Study: StudySpec{
		World:  worldgen.TestConfig(),
		Faults: &FaultSpec{Seed: 1, Profile: "no-such-profile"},
	}})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	if _, err := NewWorker(context.Background(), WorkerOptions{Coordinator: srv.URL, Name: "w"}); err == nil {
		t.Fatal("NewWorker accepted an unknown fault profile")
	}
}
