package fabric

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"geoblock/internal/faults"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/worldgen"
)

// TestFabricTracePropagation runs one traced phase through a
// coordinator, a chaos-killed victim, and two survivors, and checks
// both sides of the trace plumbing: the coordinator's merged stream
// (deterministic unit events shipped upstream plus its own
// runtime-class lease events) and the victim's local black box (its
// worker.kill event and the flight dump the kill triggers).
func TestFabricTracePropagation(t *testing.T) {
	domains, countries, tasks, cfg := fabricInputs()
	reg := telemetry.New()
	cfg.Metrics = reg
	coordTr := trace.New(trace.Root(11))
	coord := New(Options{
		Study:    StudySpec{World: worldgen.TestConfig()},
		LeaseTTL: -1,
		Metrics:  reg,
		Trace:    coordTr,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	col := &scanner.Collect{}
	phaseErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		phaseErr <- coord.RunPhase(ctx, domains, countries, tasks, cfg, col)
	}()

	// The victim executes one unit and dies before reporting it; its
	// tracer keeps the local record and dumps the flight ring.
	var dump strings.Builder
	victimTr := trace.New(trace.Root(12)).WithFlightSink(&dump)
	victim, err := NewWorker(ctx, WorkerOptions{
		Coordinator: srv.URL, Name: "victim", Sleep: yield,
		Kill:  faults.New(7).WorkerDeath(1),
		Trace: victimTr,
	})
	if err != nil {
		t.Fatalf("victim worker: %v", err)
	}
	if err := victim.Run(ctx); !errors.Is(err, ErrKilled) {
		t.Fatalf("victim died with %v, want ErrKilled", err)
	}
	if !hasEvent(victimTr, "worker.kill", "killed") {
		t.Error("victim trace has no worker.kill event")
	}
	if victimTr.FlightDumps() != 1 {
		t.Errorf("victim flight dumps = %d, want 1", victimTr.FlightDumps())
	}
	if !strings.Contains(dump.String(), "killed by chaos hook") {
		t.Errorf("flight dump missing the kill reason:\n%s", dump.String())
	}

	workerTrs := make([]*trace.Tracer, 2)
	workerErrs := make([]error, 2)
	for i := range workerTrs {
		workerTrs[i] = trace.New(trace.Root(uint64(20 + i)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(ctx, WorkerOptions{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("w%d", i),
				Sleep:       yield,
				Trace:       workerTrs[i],
			})
			if err != nil {
				workerErrs[i] = err
				return
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}
	if err := <-phaseErr; err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	coord.FinishStudy()
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// The survivors executed units and said so locally.
	execs := 0
	for _, tr := range workerTrs {
		if hasEvent(tr, "worker.exec", "ok") {
			execs++
		}
	}
	if execs == 0 {
		t.Error("no surviving worker recorded a worker.exec event")
	}

	// The coordinator's stream merged the workers' deterministic unit
	// events (fetch spans only ever run on workers here) and recorded
	// its own runtime lease protocol, including the re-issue of the
	// victim's forfeited lease and at least one completed unit.
	snap := coordTr.Snapshot()
	if !snapHas(snap, "fetch", "", false) {
		t.Error("coordinator trace has no worker-executed fetch events")
	}
	if !snapHas(snap, "lease", "", true) {
		t.Error("coordinator trace has no lease events")
	}
	if !snapHas(snap, "unit.complete", "ok", true) {
		t.Error("coordinator trace has no completed unit event")
	}
	// Every merged deterministic event belongs to the coordinator's
	// trace ID: worker-minted spans agree with the coordinator's
	// derivation.
	for _, ev := range snap.Deterministic().Events {
		if ev.Trace != coordTr.Root().Trace {
			t.Fatalf("merged event %q carries trace %s, want %s", ev.Name, ev.Trace, coordTr.Root().Trace)
		}
	}
}

func hasEvent(tr *trace.Tracer, name, outcome string) bool {
	return snapHas(tr.Snapshot(), name, outcome, true)
}

func snapHas(snap *trace.Trace, name, outcome string, runtime bool) bool {
	for _, ev := range snap.Events {
		if ev.Name == name && ev.Runtime == runtime && (outcome == "" || ev.Outcome == outcome) {
			return true
		}
	}
	return false
}
