// Package category is the FortiGuard substitute: a fixed web-content
// taxonomy, the risky-category policy the paper applies before probing
// from end-user devices, and the sampling weights that shape the
// synthetic domain populations.
//
// The paper classifies domains with FortiGuard and removes dangerous or
// sensitive categories (pornography, weapons, spam, malware — and, for
// the Top-1M study, additionally violence, drugs, dating, censorship
// circumvention, and uncategorized domains) so that requests made from
// residential proxy users' machines are safe (§3.3, §4.1.1, §5.1.2).
package category

// Category is one content category in the taxonomy.
type Category string

// Safe categories: the 20 categories the Top-10K study reports on
// (Table 4) plus the extra ones appearing in the Top-1M study (Table 8).
const (
	ChildEducation   Category = "Child Education"
	Advertising      Category = "Advertising"
	JobSearch        Category = "Job Search"
	Shopping         Category = "Shopping"
	Travel           Category = "Travel"
	Newsgroups       Category = "Newsgroups and Message Boards"
	WebHosting       Category = "Web Hosting"
	Business         Category = "Business"
	Sports           Category = "Sports"
	PersonalVehicles Category = "Personal Vehicles"
	Reference        Category = "Reference"
	Health           Category = "Health and Wellness"
	NewsMedia        Category = "News and Media"
	Freeware         Category = "Freeware and Software Downloads"
	InfoTech         Category = "Information Technology"
	Games            Category = "Games"
	Entertainment    Category = "Entertainment"
	Finance          Category = "Finance and Banking"
	Education        Category = "Education"
	Society          Category = "Society and Lifestyle"
	PersonalSites    Category = "Personal Websites and Blogs"
	Auctions         Category = "Auctions"
)

// Risky categories, excluded before any probing.
const (
	Pornography   Category = "Pornography"
	Weapons       Category = "Weapons"
	Spam          Category = "Spam"
	Malicious     Category = "Malicious Websites"
	Violence      Category = "Violence"
	Drugs         Category = "Drug Abuse"
	Dating        Category = "Dating"
	Circumvention Category = "Proxy Avoidance"
	Unknown       Category = "Unknown"
)

// Safe lists every probe-safe category in stable order.
func Safe() []Category {
	return []Category{
		ChildEducation, Advertising, JobSearch, Shopping, Travel,
		Newsgroups, WebHosting, Business, Sports, PersonalVehicles,
		Reference, Health, NewsMedia, Freeware, InfoTech, Games,
		Entertainment, Finance, Education, Society, PersonalSites,
		Auctions,
	}
}

// Risky lists every excluded category in stable order.
func Risky() []Category {
	return []Category{
		Pornography, Weapons, Spam, Malicious, Violence, Drugs,
		Dating, Circumvention, Unknown,
	}
}

// IsRisky reports whether c is excluded by the Top-10K study's filter:
// "dangerous or sensitive categories, such as Pornography, Weapons, and
// Spam" (§4.1.1), plus uncategorized domains (§3.3).
func IsRisky(c Category) bool {
	switch c {
	case Pornography, Weapons, Spam, Malicious, Violence, Drugs, Dating, Unknown:
		return true
	}
	return false
}

// IsRiskyTop1M reports whether c is excluded by the Top-1M study's
// broader filter (§5.1.2): everything in IsRisky plus censorship
// circumvention.
func IsRiskyTop1M(c Category) bool {
	return IsRisky(c) || c == Circumvention
}

// Weight is a relative sampling weight for one category.
type Weight struct {
	Cat Category
	W   float64
}

// Top10KWeights shapes the Top-10K population so the per-category
// "Tested" counts land near Table 4 (e.g. Information Technology 1,239
// of 6,766 safe-and-responding domains; Child Education only 8). Risky
// categories get enough mass that ~20% of the initial 10,000 are
// filtered out, matching 10,000 → 8,003.
func Top10KWeights() []Weight {
	return []Weight{
		{ChildEducation, 8}, {Advertising, 120}, {JobSearch, 97},
		{Shopping, 787}, {Travel, 168}, {Newsgroups, 143},
		{WebHosting, 41}, {Business, 758}, {Sports, 179},
		{PersonalVehicles, 78}, {Reference, 176}, {Health, 92},
		{NewsMedia, 938}, {Freeware, 115}, {InfoTech, 1239},
		{Games, 348}, {Entertainment, 442}, {Finance, 454},
		{Education, 583}, {Society, 160}, {PersonalSites, 140},
		{Auctions, 30},
		// Risky tail: calibrated so roughly 2,000 of 10,000 initial
		// domains are excluded by the safe-list filter.
		{Pornography, 700}, {Weapons, 90}, {Spam, 160},
		{Malicious, 250}, {Violence, 80}, {Drugs, 120},
		{Dating, 180}, {Circumvention, 60}, {Unknown, 360},
	}
}

// Top1MWeights shapes the Top-1M CDN-customer population toward the
// Table 8 "Tested" proportions (Business 1,176 and Information
// Technology 1,016 of 5,462 classified, Personal Vehicles only 79).
func Top1MWeights() []Weight {
	return []Weight{
		{ChildEducation, 6}, {Advertising, 70}, {JobSearch, 42},
		{Shopping, 418}, {Travel, 153}, {Newsgroups, 60},
		{WebHosting, 80}, {Business, 1176}, {Sports, 121},
		{PersonalVehicles, 79}, {Reference, 81}, {Health, 146},
		{NewsMedia, 345}, {Freeware, 90}, {InfoTech, 1016},
		{Games, 206}, {Entertainment, 170}, {Finance, 108},
		{Education, 239}, {Society, 148}, {PersonalSites, 176},
		{Auctions, 35},
		// "Other" bucket in Table 8 spreads over the long tail; risky
		// categories are rarer among CDN customers than in the raw
		// Top 10K (the paper excludes 152,001 → 123,614, about 19%).
		{Pornography, 350}, {Weapons, 40}, {Spam, 80},
		{Malicious, 120}, {Violence, 40}, {Drugs, 60},
		{Dating, 90}, {Circumvention, 30}, {Unknown, 190},
	}
}

// FilterSafe partitions cats' indices into kept and removed under the
// Top-10K policy, preserving order.
func FilterSafe(cats []Category) (kept, removed []int) {
	for i, c := range cats {
		if IsRisky(c) {
			removed = append(removed, i)
		} else {
			kept = append(kept, i)
		}
	}
	return kept, removed
}
