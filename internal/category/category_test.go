package category

import "testing"

func TestSafeRiskyDisjoint(t *testing.T) {
	risky := map[Category]bool{}
	for _, c := range Risky() {
		risky[c] = true
	}
	for _, c := range Safe() {
		if risky[c] {
			t.Fatalf("%s is both safe and risky", c)
		}
		if IsRisky(c) || IsRiskyTop1M(c) {
			t.Fatalf("safe category %s classified risky", c)
		}
	}
}

func TestRiskyPolicy(t *testing.T) {
	if !IsRisky(Pornography) || !IsRisky(Unknown) {
		t.Fatal("Top-10K filter misses core risky categories")
	}
	if !IsRisky(Dating) || !IsRisky(Drugs) || !IsRisky(Violence) {
		t.Fatal("sensitive categories must be excluded before residential probing")
	}
	if IsRisky(Circumvention) {
		t.Fatal("Circumvention is only excluded in the Top-1M study")
	}
	if !IsRiskyTop1M(Dating) || !IsRiskyTop1M(Circumvention) || !IsRiskyTop1M(Spam) {
		t.Fatal("Top-1M filter must be a superset")
	}
}

func TestTop1MFilterSuperset(t *testing.T) {
	for _, c := range append(Safe(), Risky()...) {
		if IsRisky(c) && !IsRiskyTop1M(c) {
			t.Fatalf("%s risky for Top10K but not Top1M", c)
		}
	}
}

func TestWeightsCoverTaxonomy(t *testing.T) {
	for name, weights := range map[string][]Weight{
		"top10k": Top10KWeights(),
		"top1m":  Top1MWeights(),
	} {
		seen := map[Category]bool{}
		for _, w := range weights {
			if w.W <= 0 {
				t.Errorf("%s: non-positive weight for %s", name, w.Cat)
			}
			if seen[w.Cat] {
				t.Errorf("%s: duplicate weight for %s", name, w.Cat)
			}
			seen[w.Cat] = true
		}
		for _, c := range Safe() {
			if !seen[c] {
				t.Errorf("%s: safe category %s missing a weight", name, c)
			}
		}
	}
}

func TestTop10KRiskyFraction(t *testing.T) {
	var safe, risky float64
	for _, w := range Top10KWeights() {
		if IsRisky(w.Cat) {
			risky += w.W
		} else {
			safe += w.W
		}
	}
	frac := risky / (safe + risky)
	// The paper keeps 8,003 of 10,000: the risky fraction should land
	// near 20%.
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("risky weight fraction = %.3f, want ~0.20", frac)
	}
}

func TestFilterSafe(t *testing.T) {
	cats := []Category{Shopping, Pornography, Business, Unknown, Travel}
	kept, removed := FilterSafe(cats)
	if len(kept) != 3 || len(removed) != 2 {
		t.Fatalf("kept=%v removed=%v", kept, removed)
	}
	if kept[0] != 0 || kept[1] != 2 || kept[2] != 4 {
		t.Fatalf("kept order wrong: %v", kept)
	}
	if removed[0] != 1 || removed[1] != 3 {
		t.Fatalf("removed order wrong: %v", removed)
	}
}
