package cdnid

import (
	"testing"

	"geoblock/internal/worldgen"
)

var testWorld = worldgen.Generate(worldgen.TestConfig())

func TestGAERangesMatchWorld(t *testing.T) {
	id := NewIdentifier(testWorld)
	got := id.GAERanges()
	want := worldgen.GAENetblocks()
	if len(got) != len(want) {
		t.Fatalf("walk found %d ranges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Lo != want[i].Lo || got[i].Hi != want[i].Hi {
			t.Fatalf("range %d mismatch", i)
		}
	}
}

func TestScanRanksTop10K(t *testing.T) {
	id := NewIdentifier(testWorld)
	pops := id.ScanRanks(1, len(testWorld.Top10K()))

	// Ground truth counts per provider among responsive domains.
	truth := map[worldgen.Provider]int{}
	for _, d := range testWorld.Top10K() {
		if d.Unreachable {
			continue
		}
		for _, p := range d.Providers {
			if p.IsCDN() && p != worldgen.Baidu && p != worldgen.Soasta {
				truth[p]++
			}
		}
	}
	for _, p := range []worldgen.Provider{
		worldgen.Cloudflare, worldgen.CloudFront, worldgen.Incapsula,
		worldgen.Akamai, worldgen.AppEngine,
	} {
		got := len(pops.ByProvider[p])
		want := truth[p]
		// Bot defenses can hide a few Akamai domains from the prober;
		// allow a small deficit, never an excess.
		if got > want || got < want-want/6-3 {
			t.Errorf("%s: identified %d, ground truth %d", p, got, want)
		}
	}
}

func TestScanFindsOnlyRealCustomers(t *testing.T) {
	id := NewIdentifier(testWorld)
	pops := id.ScanRanks(1, 300)
	for p, ranks := range pops.ByProvider {
		for _, r := range ranks {
			d := testWorld.DomainAt(r)
			if !d.FrontedBy(p) {
				t.Errorf("rank %d (%s) misidentified as %s", r, d.Name, p)
			}
		}
	}
}

func TestScanRanksDeterministic(t *testing.T) {
	id := NewIdentifier(testWorld)
	a := id.ScanRanks(1, 200)
	b := id.ScanRanks(1, 200)
	for p := range a.ByProvider {
		if len(a.ByProvider[p]) != len(b.ByProvider[p]) {
			t.Fatalf("%s differs between runs", p)
		}
		for i := range a.ByProvider[p] {
			if a.ByProvider[p][i] != b.ByProvider[p][i] {
				t.Fatalf("%s rank %d differs", p, i)
			}
		}
	}
}

func TestDualProviderDetection(t *testing.T) {
	// Scan a slice of the Top-1M customer space and confirm dual
	// detections correspond to dual-provider domains.
	ranks := testWorld.CustomerRanks()
	if len(ranks) < 200 {
		t.Skip("not enough customers")
	}
	id := NewIdentifier(testWorld)
	lo, hi := ranks[0], ranks[199]
	pops := id.ScanRanks(lo, hi)
	for _, r := range pops.Dual {
		d := testWorld.DomainAt(r)
		if len(d.Providers) < 2 && !d.GAEHosted {
			t.Errorf("rank %d (%s) flagged dual but has providers %v", r, d.Name, d.Providers)
		}
	}
}

func TestNSPopulationsConservative(t *testing.T) {
	id := NewIdentifier(testWorld)
	pops := id.NSPopulations(1, len(testWorld.Top10K()))

	full := id.ScanRanks(1, len(testWorld.Top10K()))
	for _, p := range []worldgen.Provider{worldgen.Cloudflare, worldgen.Akamai} {
		ns := len(pops[p])
		hdr := len(full.ByProvider[p])
		if ns == 0 {
			t.Errorf("NS method found no %s customers", p)
		}
		if ns >= hdr && p == worldgen.Cloudflare {
			t.Errorf("NS method should see only a fraction of %s customers (ns=%d, header=%d)", p, ns, hdr)
		}
		for _, r := range pops[p] {
			if !testWorld.DomainAt(r).FrontedBy(p) {
				t.Errorf("NS method misidentified rank %d as %s", r, p)
			}
		}
	}
}

func TestPopulationsTotal(t *testing.T) {
	p := &Populations{ByProvider: map[worldgen.Provider][]int{
		worldgen.Cloudflare: {1, 2, 3},
		worldgen.Akamai:     {3, 4},
	}}
	if p.Total() != 4 {
		t.Fatalf("total = %d", p.Total())
	}
}

func TestFullRankSpaceScan(t *testing.T) {
	// Exercise the paper's actual discovery method: walk every rank in
	// the (shrunken) rank space, including the non-customer long tail.
	cfg := worldgen.TestConfig()
	cfg.Scale = 0.01
	cfg.Top1MRanks = 5000
	w := worldgen.Generate(cfg)
	id := NewIdentifier(w)
	pops := id.ScanRanks(1, cfg.Top1MRanks)

	// Every discovered rank must really be a customer…
	for p, ranks := range pops.ByProvider {
		for _, r := range ranks {
			if !w.DomainAt(r).FrontedBy(p) {
				t.Fatalf("rank %d misattributed to %s", r, p)
			}
		}
	}
	// …and the scan must find nearly all of them.
	truth := 0
	for _, r := range w.CustomerRanks() {
		if !w.DomainAt(r).Unreachable {
			truth++
		}
	}
	if got := pops.Total(); got < truth*9/10 {
		t.Fatalf("full scan found %d customers of %d", got, truth)
	}
}
