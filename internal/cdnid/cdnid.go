// Package cdnid identifies which domains are customers of each CDN or
// hosting provider — the population-discovery methods of §5.1.1:
//
//   - Header classifiers: Cloudflare (CF-RAY), Amazon CloudFront
//     (X-Amz-Cf-Id) and Incapsula (X-Iinfo) append identifying response
//     headers; a domain counts as fronted if the header appears
//     anywhere in its redirect chain.
//   - The Akamai Pragma probe: sending the Akamai debug Pragma
//     directives makes Akamai edges insert cache headers.
//   - App Engine netblocks: a recursive SPF-style TXT walk enumerates
//     Google's address blocks; domains whose A record lands inside are
//     App Engine-detected.
//
// And the conservative NS-record method of §3.1 used for the early
// exploration (it sees only the fraction of customers whose
// authoritative DNS is the CDN's).
package cdnid

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"sync"

	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

// Populations is the discovered customer sets, as sorted rank lists.
type Populations struct {
	ByProvider map[worldgen.Provider][]int
	// Dual lists ranks detected under two or more providers (the
	// paper's 1,408 dual-service domains, e.g. zales.com).
	Dual []int
}

// Total returns the number of unique ranks across providers.
func (p *Populations) Total() int {
	seen := map[int]bool{}
	for _, ranks := range p.ByProvider {
		for _, r := range ranks {
			seen[r] = true
		}
	}
	return len(seen)
}

// Identifier performs discovery scans from a single stable vantage.
type Identifier struct {
	World       *worldgen.World
	Vantage     geo.IP
	Concurrency int
}

// NewIdentifier builds an identifier scanning from a U.S. address (the
// paper scanned from its university network).
func NewIdentifier(w *worldgen.World) *Identifier {
	var ip geo.IP
	var err error
	for n := uint64(7); ; n++ {
		ip, err = w.Geo.DatacenterIP("US", n)
		if err != nil || !w.Geo.IsAnonymizer(ip) {
			break
		}
	}
	if err != nil {
		panic(err)
	}
	return &Identifier{World: w, Vantage: ip, Concurrency: 8}
}

// GAERanges performs the recursive netblock walk and returns the
// discovered Google address ranges.
func (id *Identifier) GAERanges() []geo.Range {
	res := &vnet.Resolver{World: id.World}
	var out []geo.Range
	var walk func(name string)
	walk = func(name string) {
		for _, txt := range res.LookupTXT(name) {
			includes, cidrs := vnet.ParseSPF(txt)
			for _, c := range cidrs {
				if r, err := vnet.ParseCIDR(c); err == nil {
					out = append(out, r)
				}
			}
			for _, inc := range includes {
				walk(inc)
			}
		}
	}
	walk(vnet.GoogleNetblockRoot)
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// ScanRanks identifies providers for every rank in [lo, hi] using
// header probing plus the netblock method. Unresponsive domains simply
// contribute nothing.
func (id *Identifier) ScanRanks(lo, hi int) *Populations {
	ranks := make([]int, 0, hi-lo+1)
	for r := lo; r <= hi; r++ {
		ranks = append(ranks, r)
	}
	return id.ScanRankList(ranks)
}

// ScanRankList identifies providers for an explicit rank list.
func (id *Identifier) ScanRankList(ranks []int) *Populations {
	gae := id.GAERanges()
	res := &vnet.Resolver{World: id.World}

	type found struct {
		rank  int
		provs []worldgen.Provider
	}
	conc := id.Concurrency
	if conc <= 0 {
		conc = 8
	}
	stripe := make([][]found, conc)
	var wg sync.WaitGroup
	for wkr := 0; wkr < conc; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			stack := vnet.NewStack(id.World, id.Vantage)
			for i := wkr; i < len(ranks); i += conc {
				d := id.World.DomainAt(ranks[i])
				if d == nil {
					continue
				}
				provs := id.classifyDomain(stack, res, d, gae)
				if len(provs) > 0 {
					stripe[wkr] = append(stripe[wkr], found{rank: ranks[i], provs: provs})
				}
			}
		}(wkr)
	}
	wg.Wait()

	pops := &Populations{ByProvider: make(map[worldgen.Provider][]int)}
	for _, fs := range stripe {
		for _, f := range fs {
			for _, p := range f.provs {
				pops.ByProvider[p] = append(pops.ByProvider[p], f.rank)
			}
			if len(f.provs) > 1 {
				pops.Dual = append(pops.Dual, f.rank)
			}
		}
	}
	for p := range pops.ByProvider {
		sort.Ints(pops.ByProvider[p])
	}
	sort.Ints(pops.Dual)
	return pops
}

// classifyDomain walks the redirect chain collecting provider evidence.
func (id *Identifier) classifyDomain(stack *vnet.Stack, res *vnet.Resolver, d *worldgen.Domain, gae []geo.Range) []worldgen.Provider {
	set := map[worldgen.Provider]bool{}

	// Netblock method: A-record membership.
	if ip, ok := res.LookupA(d.Name); ok && inRanges(ip, gae) {
		set[worldgen.AppEngine] = true
	}

	// Header probe over the redirect chain (manual chain walk so every
	// hop's headers are inspected, per §5.1.1).
	url := "http://" + d.Name + "/"
	seed := stats.Mix64(hashStr(d.Name) ^ 0x1d3)
	for hop := 0; hop < 10; hop++ {
		req, err := http.NewRequestWithContext(
			vnet.WithSampleSeed(context.Background(), seed), http.MethodHead, url, nil)
		if err != nil {
			break
		}
		req.Header.Set("User-Agent", "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0")
		req.Header.Set("Pragma", "akamai-x-cache-on, akamai-x-cache-remote-on, akamai-x-get-cache-key")
		resp, err := stack.RoundTrip(req)
		if err != nil {
			break
		}
		resp.Body.Close()
		collectHeaderEvidence(resp.Header, set)
		if resp.StatusCode < 300 || resp.StatusCode >= 400 {
			break
		}
		next := resp.Header.Get("Location")
		if next == "" {
			break
		}
		url = next
	}

	out := make([]worldgen.Provider, 0, len(set))
	for _, p := range []worldgen.Provider{
		worldgen.Cloudflare, worldgen.Akamai, worldgen.CloudFront,
		worldgen.AppEngine, worldgen.Incapsula,
	} {
		if set[p] {
			out = append(out, p)
		}
	}
	return out
}

func collectHeaderEvidence(h http.Header, set map[worldgen.Provider]bool) {
	if h.Get("CF-RAY") != "" {
		set[worldgen.Cloudflare] = true
	}
	if h.Get("X-Amz-Cf-Id") != "" {
		set[worldgen.CloudFront] = true
	}
	if h.Get("X-Iinfo") != "" {
		set[worldgen.Incapsula] = true
	}
	if h.Get("X-Check-Cacheable") != "" ||
		strings.Contains(h.Get("X-Cache"), "akamaitechnologies.com") {
		set[worldgen.Akamai] = true
	}
}

// NSPopulations runs the conservative §3.1 discovery: domains whose
// authoritative nameservers belong to Cloudflare or Akamai.
func (id *Identifier) NSPopulations(lo, hi int) map[worldgen.Provider][]int {
	res := &vnet.Resolver{World: id.World}
	out := map[worldgen.Provider][]int{}
	for rank := lo; rank <= hi; rank++ {
		d := id.World.DomainAt(rank)
		if d == nil {
			continue
		}
		for _, ns := range res.LookupNS(d.Name) {
			switch {
			case strings.HasSuffix(ns, ".ns.cloudflare.com"):
				out[worldgen.Cloudflare] = append(out[worldgen.Cloudflare], rank)
			case strings.HasSuffix(ns, ".akam.net"):
				out[worldgen.Akamai] = append(out[worldgen.Akamai], rank)
			default:
				continue
			}
			break
		}
	}
	return out
}

func inRanges(ip geo.IP, rs []geo.Range) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi > ip })
	return i < len(rs) && ip >= rs[i].Lo
}

func hashStr(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
