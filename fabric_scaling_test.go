package geoblock

import (
	"context"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"geoblock/internal/telemetry"
)

// timedFabricStudy runs the Top-10K study distributed over nWorkers
// worker loops and returns the study's wall-clock duration. Unlike
// fabricRun it keeps the default lease TTL (never expiring under the
// registry's virtual clock), so no unit is ever re-issued and the
// measurement sees each unit execute exactly once.
func timedFabricStudy(t *testing.T, nWorkers int) time.Duration {
	t.Helper()
	wcfg := matrixWorld()
	reg := telemetry.New()
	coord := NewFabric(FabricOptions{
		Study:   FabricStudySpec{World: wcfg},
		Metrics: reg,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	workerErrs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewFabricWorker(ctx, FabricWorkerOptions{
				Coordinator: srv.URL, Name: "w" + string(rune('a'+i)), Sleep: fabricYield,
			})
			if err != nil {
				workerErrs[i] = err
				return
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}

	wall := telemetry.Wall{}
	start := wall.Now()
	s := New(Options{World: &wcfg, Metrics: reg, Fabric: coord})
	s.RunTop10K(Top10KConfig{})
	if err := s.Err(); err != nil {
		t.Fatalf("fabric study with %d workers aborted: %v", nWorkers, err)
	}
	coord.FinishStudy()
	wg.Wait()
	elapsed := wall.Now().Sub(start)
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return elapsed
}

// TestFabricScalesWithWorkers is the regression gate for the BENCH_6
// finding: per-unit leasing made every fabric configuration slower than
// a single worker (4 workers ran ~43% behind), because each tiny unit
// cost a full coordinator round trip. With batched lease grants, adding
// a worker must actually help: 2 workers have to beat 1 on the same
// bench workload (the matrixWorld Top-10K study). Best-of-N absorbs
// scheduler noise; the comparison is relative, so machine speed is
// irrelevant.
func TestFabricScalesWithWorkers(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs for worker parallelism to be observable")
	}
	const attempts = 3
	var best1, best2 time.Duration
	for i := 0; i < attempts; i++ {
		d1 := timedFabricStudy(t, 1)
		d2 := timedFabricStudy(t, 2)
		if best1 == 0 || d1 < best1 {
			best1 = d1
		}
		if best2 == 0 || d2 < best2 {
			best2 = d2
		}
		if best2 < best1 {
			break
		}
	}
	t.Logf("fabric study: 1 worker %v, 2 workers %v (best of ≤%d)", best1, best2, attempts)
	if best2 >= best1 {
		t.Fatalf("2 workers (%v) did not beat 1 worker (%v): the lease path is serializing the fabric again", best2, best1)
	}
}
