package geoblock

import (
	"bytes"
	"errors"
	"testing"

	"geoblock/internal/analysis"
	"geoblock/internal/faults"
	"geoblock/internal/papertables"
	"geoblock/internal/runstore"
	"geoblock/internal/telemetry"
)

// resumeRun executes the Top-10K study once, optionally journaled, and
// returns the result, the rendered paper tables, and the deterministic
// telemetry snapshot.
func resumeRun(t *testing.T, store *RunStore, reg *telemetry.Registry) (*Top10KResult, string, string) {
	t.Helper()
	s := New(Options{Scale: 0.02, Seed: 11, Metrics: reg, Store: store})
	r := s.RunTop10K(Top10KConfig{})
	var tables bytes.Buffer
	papertables.PrintCoverage(&tables, "top10k initial snapshot", r.Outages, r.Coverage)
	papertables.PrintTable1(&tables, analysis.BuildTable1(r))
	rows, total := analysis.BuildTable2(r)
	papertables.PrintTable2(&tables, rows, total)
	papertables.PrintTable5(&tables, s.World.Geo, analysis.BuildTable5(s.World, r.Findings))
	return r, tables.String(), reg.Snapshot().Deterministic().Text()
}

// TestStudyResumeAfterCrash is the end-to-end resume contract: kill the
// journal partway through a Top-10K study, reopen the directory with a
// fresh System, and the resumed study's findings, paper tables, and
// deterministic telemetry are byte-identical to a run that never
// crashed.
func TestStudyResumeAfterCrash(t *testing.T) {
	refResult, refTables, refSnap := resumeRun(t, nil, telemetry.New())

	// A journaled run with no crash must change nothing.
	dir := t.TempDir()
	st, err := OpenRunStore(dir, RunStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, tables, snap := resumeRun(t, st, telemetry.New())
	st.Close()
	if tables != refTables {
		t.Fatalf("journaling changed the paper tables:\n--- journaled ---\n%s\n--- reference ---\n%s", tables, refTables)
	}
	if snap != refSnap {
		t.Fatalf("journaling changed the deterministic snapshot:\n--- journaled ---\n%s\n--- reference ---\n%s", snap, refSnap)
	}

	// Crash a fresh run mid-study: the store severs at a seeded record
	// count, every later phase fails fast, and the study limps to a
	// partial result.
	dir = t.TempDir()
	crashed, err := OpenRunStore(dir, RunStoreOptions{Crash: faults.New(7).StoreCrash(500)})
	if err != nil {
		t.Fatal(err)
	}
	crashSys := New(Options{Scale: 0.02, Seed: 11, Metrics: telemetry.New(), Store: crashed})
	_ = crashSys.RunTop10K(Top10KConfig{})
	if err := crashSys.study.Err(); !errors.Is(err, runstore.ErrSevered) {
		t.Fatalf("crashed study error = %v, want ErrSevered", err)
	}
	crashed.Close()

	// Resume: a fresh System over a reopened journal replays the
	// committed prefix and finishes the rest.
	resumed, err := OpenRunStore(dir, RunStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if phases := resumed.Phases(); len(phases) == 0 {
		t.Fatal("crashed journal holds no phases; the crash landed before any scan")
	}
	result, tables, snap := resumeRun(t, resumed, telemetry.New())
	if len(result.Findings) != len(refResult.Findings) {
		t.Fatalf("resumed study found %d instances, reference %d", len(result.Findings), len(refResult.Findings))
	}
	for i := range result.Findings {
		if result.Findings[i] != refResult.Findings[i] {
			t.Fatalf("resumed finding %d differs:\n%+v\n%+v", i, result.Findings[i], refResult.Findings[i])
		}
	}
	if tables != refTables {
		t.Fatalf("resumed paper tables differ:\n--- resumed ---\n%s\n--- reference ---\n%s", tables, refTables)
	}
	if snap != refSnap {
		t.Fatalf("resumed deterministic snapshot differs:\n--- resumed ---\n%s\n--- reference ---\n%s", snap, refSnap)
	}
}
