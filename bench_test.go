// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md's experiment index), plus ablation
// benches for the methodology choices §4.1.5 discusses and
// micro-benchmarks for the hot paths.
//
// Table/figure benches share one study run (the expensive part) and
// measure the analysis that regenerates the artifact, reporting the
// headline statistic via b.ReportMetric so `go test -bench=.` doubles
// as a shape check. cmd/mktables produces the full paper-scale
// artifacts; see EXPERIMENTS.md for recorded paper-vs-measured values.
package geoblock

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"geoblock/internal/analysis"
	"geoblock/internal/blockpage"
	"geoblock/internal/cdn"
	"geoblock/internal/cfrules"
	"geoblock/internal/cluster"
	"geoblock/internal/fingerprint"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/ooni"
	"geoblock/internal/outlier"
	"geoblock/internal/proxy"
	"geoblock/internal/runstore"
	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/textfeat"
	"geoblock/internal/worldgen"
)

// benchScale keeps per-iteration study costs tractable; the shared
// fixture uses a slightly larger world for stabler shapes.
const benchScale = 0.05

var (
	benchOnce sync.Once
	benchSys  *System
	bench10K  *Top10KResult
	bench1M   *Top1MResult
	benchExp  *ConsistencyExperiment
)

func fixture(b *testing.B) (*System, *Top10KResult, *Top1MResult, *ConsistencyExperiment) {
	b.Helper()
	benchOnce.Do(func() {
		benchSys = New(Options{Scale: benchScale})
		bench10K = benchSys.RunTop10K(Top10KConfig{})
		bench1M = benchSys.RunTop1M(Top1MConfig{})
		benchExp = benchSys.RunConsistencyExperiment(bench10K, 100, 500, []int{1, 2, 3, 5, 10, 20})
	})
	return benchSys, bench10K, bench1M, benchExp
}

// --- Tables -------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	_, r10, _, _ := fixture(b)
	var t1 analysis.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 = analysis.BuildTable1(r10)
	}
	b.ReportMetric(float64(t1.SafeDomains)/float64(t1.InitialDomains), "safe-fraction")
	b.ReportMetric(float64(t1.Clusters), "clusters")
	b.ReportMetric(float64(t1.DiscoveredProviders), "providers")
}

func BenchmarkTable2(b *testing.B) {
	_, r10, _, _ := fixture(b)
	var total analysis.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, total = analysis.BuildTable2(r10)
	}
	b.ReportMetric(total.Recall(), "overall-recall") // paper: 0.583
}

func BenchmarkTable3(b *testing.B) {
	sys, r10, _, _ := fixture(b)
	var rows []analysis.CategoryCDNRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.BuildTable3(sys.World, r10.Findings)
	}
	b.ReportMetric(float64(len(rows)), "categories")
}

func BenchmarkTable4(b *testing.B) {
	sys, r10, _, _ := fixture(b)
	tested := analysis.RespondingDomains(r10.Initial)
	var rows []analysis.CategoryRateRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.BuildCategoryRates(sys.World, tested, r10.Findings)
	}
	var t, g int
	for _, row := range rows {
		t += row.Tested
		g += row.Geoblocked
	}
	b.ReportMetric(float64(g)/float64(t), "geoblocked-fraction") // paper: 0.016
}

func BenchmarkTable5(b *testing.B) {
	sys, r10, _, _ := fixture(b)
	var t5 analysis.Table5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5 = analysis.BuildTable5(sys.World, r10.Findings)
	}
	if len(t5.Countries) > 0 {
		b.ReportMetric(float64(t5.Countries[0].Count), "top-country-instances")
	}
}

func BenchmarkTable6(b *testing.B) {
	_, r10, _, _ := fixture(b)
	var rows []analysis.CountryCDNRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.BuildCountryCDNTable(r10.Findings)
	}
	b.ReportMetric(sanctionedShare(rows), "sanctioned-share") // paper: 270/596 ≈ 0.45 in the top rows
}

func BenchmarkTable7(b *testing.B) {
	_, _, r1m, _ := fixture(b)
	var rows []analysis.CountryCDNRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.BuildCountryCDNTable(r1m.ExplicitFindings)
	}
	b.ReportMetric(sanctionedShare(rows), "sanctioned-share") // paper: 680/1565 ≈ 0.43
}

func sanctionedShare(rows []analysis.CountryCDNRow) float64 {
	total, sanc := 0, 0
	for _, r := range rows {
		total += r.Total
		switch r.Country {
		case "IR", "SY", "SD", "CU":
			sanc += r.Total
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sanc) / float64(total)
}

func BenchmarkTable8(b *testing.B) {
	sys, _, r1m, _ := fixture(b)
	tested := analysis.RespondingDomains(r1m.Initial)
	var rows []analysis.CategoryRateRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.BuildCategoryRates(sys.World, tested, r1m.ExplicitFindings)
	}
	var t, g int
	for _, row := range rows {
		t += row.Tested
		g += row.Geoblocked
	}
	b.ReportMetric(float64(g)/float64(t), "geoblocked-fraction") // paper: 0.044
}

func BenchmarkTable9(b *testing.B) {
	var ds *cfrules.Dataset
	for i := 0; i < b.N; i++ {
		ds = cfrules.Synthesize(403, 0.05)
	}
	baseline, _ := ds.Table9(ds.TopBlockedCountries(16))
	b.ReportMetric(baseline.PerTier[cfrules.Enterprise], "enterprise-baseline") // paper: 0.3707
	b.ReportMetric(baseline.All, "all-baseline")                                // paper: 0.0193
}

// --- Figures ------------------------------------------------------------

func BenchmarkFigure1(b *testing.B) {
	_, _, _, exp := fixture(b)
	var series []stats.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = analysis.BuildFigure1(exp)
	}
	_ = series
	b.ReportMetric(exp.FractionBelow(20, 0.8), "below-80pct-at-20") // paper: 0.039
}

func BenchmarkFigure2(b *testing.B) {
	_, r10, _, _ := fixture(b)
	var f2 analysis.Figure2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f2 = analysis.BuildFigure2(r10)
	}
	b.ReportMetric(float64(f2.Blocked.Total())/float64(f2.All.Total()+1), "blocked-fraction")
}

func BenchmarkFigure3(b *testing.B) {
	_, _, _, exp := fixture(b)
	var s stats.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.BuildFigure3(exp)
	}
	_ = s
	b.ReportMetric(exp.MeanFalseNegative(3), "false-neg-at-3") // paper: 0.017
}

func BenchmarkFigure4(b *testing.B) {
	_, r10, _, _ := fixture(b)
	var s stats.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.BuildFigure4(r10)
	}
	_ = s
	eliminated := float64(r10.Eliminated) / float64(len(r10.AgreementRates)+1)
	b.ReportMetric(eliminated, "eliminated-fraction") // paper: 0.114
}

func BenchmarkFigure5(b *testing.B) {
	ds := cfrules.Synthesize(403, 0.05)
	var series []stats.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = analysis.BuildFigure5(ds)
	}
	last := series[0].Points[len(series[0].Points)-1].Y // KP at the snapshot
	b.ReportMetric(last, "kp-enterprise-rules")
}

// --- Study-level benches ------------------------------------------------

func BenchmarkExploration(b *testing.B) {
	// §3.1 exploration per iteration on a small world.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := New(Options{Scale: 0.02, Seed: uint64(100 + i)})
		b.StartTimer()
		r := sys.RunExploration()
		if i == 0 {
			fp := float64(r.FalsePositives) / float64(max(r.PairsBlockpage, 1))
			b.ReportMetric(fp, "false-positive-rate") // paper: 0.27
		}
	}
}

func BenchmarkTop10KStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := New(Options{Scale: 0.02, Seed: uint64(200 + i)})
		b.StartTimer()
		r := sys.RunTop10K(Top10KConfig{})
		if i == 0 {
			b.ReportMetric(float64(len(r.Findings)), "instances")
		}
	}
}

func BenchmarkNonExplicit(b *testing.B) {
	_, _, r1m, _ := fixture(b)
	// Measure the consistency scoring over the §5.2.2 data.
	scores := append(r1m.ConsistencyScores[blockpage.Akamai], r1m.ConsistencyScores[blockpage.Incapsula]...)
	perfect := 0
	for _, s := range scores {
		if s == 1.0 {
			perfect++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.BuildCountryCDNTable(r1m.ExplicitFindings)
	}
	if len(scores) > 0 {
		// Paper: only 13.9%/15.9% of Akamai/Incapsula domains are
		// perfectly consistent (vs ~85% for explicit geoblockers).
		b.ReportMetric(float64(perfect)/float64(len(scores)), "perfect-consistency-fraction")
	}
}

func BenchmarkOONI(b *testing.B) {
	sys, _, _, _ := fixture(b)
	var a *ooni.Analysis
	for i := 0; i < b.N; i++ {
		corpus := ooni.Synthesize(sys.World, ooni.Config{MeasurementsPerPair: 1})
		a = ooni.Analyze(sys.World, corpus)
	}
	b.ReportMetric(float64(a.GeoblockDomains)/float64(max(a.TestListSize, 1)), "list-fraction-geoblocking") // paper: 0.09
}

// --- Ablations (DESIGN.md §4) --------------------------------------------

// BenchmarkAblationRawLength compares the paper's percentage cutoff
// against the raw byte-difference variant it rejects (§4.1.5).
func BenchmarkAblationRawLength(b *testing.B) {
	_, r10, _, _ := fixture(b)
	cls := fingerprint.NewClassifier()

	type obs struct {
		domain int32
		length int
		block  bool
	}
	var observations []obs
	repSet := map[int16]bool{}
	for i, cc := range r10.Countries {
		for _, rc := range r10.RepCountries {
			if cc == rc {
				repSet[int16(i)] = true
			}
		}
	}
	for i := range r10.Initial.Samples {
		sm := &r10.Initial.Samples[i]
		if !repSet[sm.Country] || !sm.OK() || sm.Body == "" {
			continue
		}
		k := cls.Classify(sm.Body)
		if k == blockpage.KindNone || k == blockpage.Censorship {
			continue
		}
		observations = append(observations, obs{sm.Domain, int(sm.BodyLen), true})
	}

	var pctRecall, rawRecall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var pctHit, rawHit int
		for _, o := range observations {
			if r10.Rep.IsOutlier(o.domain, o.length, outlier.DefaultCutoff) {
				pctHit++
			}
			if r10.Rep.IsOutlierRaw(o.domain, o.length, 2000) {
				rawHit++
			}
		}
		n := float64(max(len(observations), 1))
		pctRecall = float64(pctHit) / n
		rawRecall = float64(rawHit) / n
	}
	b.ReportMetric(pctRecall, "pct-cutoff-recall")
	b.ReportMetric(rawRecall, "raw-cutoff-recall")
}

// BenchmarkAblationCutoffSweep sweeps the length cutoff (§4.1.5: "the
// selection of length cutoff is relatively arbitrary between 5% and
// 50%").
func BenchmarkAblationCutoffSweep(b *testing.B) {
	_, r10, _, _ := fixture(b)
	cutoffs := []float64{0.05, 0.30, 0.50, 0.80}
	counts := make([]int, len(cutoffs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci := range counts {
			counts[ci] = 0
		}
		for _, d := range r10.DiffsAll {
			for ci, cut := range cutoffs {
				if d > cut {
					counts[ci]++
				}
			}
		}
	}
	for ci, cut := range cutoffs {
		b.ReportMetric(float64(counts[ci]), "outliers-at-"+itoa(int(cut*100)))
	}
}

// BenchmarkAblationThreshold sweeps the agreement threshold (paper:
// 11.4% of candidate pairs eliminated at 80%).
func BenchmarkAblationThreshold(b *testing.B) {
	_, r10, _, _ := fixture(b)
	thresholds := []float64{0.5, 0.8, 0.95, 1.0}
	eliminated := make([]int, len(thresholds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ti := range eliminated {
			eliminated[ti] = 0
		}
		for _, rate := range r10.AgreementRates {
			for ti, th := range thresholds {
				if rate < th {
					eliminated[ti]++
				}
			}
		}
	}
	n := float64(max(len(r10.AgreementRates), 1))
	for ti, th := range thresholds {
		b.ReportMetric(float64(eliminated[ti])/n, "eliminated-at-"+itoa(int(th*100)))
	}
}

// BenchmarkAblationSampleSize reruns the Figure 3 readout: the false-
// negative cost of small initial snapshots.
func BenchmarkAblationSampleSize(b *testing.B) {
	_, _, _, exp := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range exp.SampleSizes {
			_ = exp.MeanFalseNegative(k)
		}
	}
	b.ReportMetric(exp.MeanFalseNegative(1), "false-neg-at-1")
	b.ReportMetric(exp.MeanFalseNegative(3), "false-neg-at-3")
	b.ReportMetric(exp.MeanFalseNegative(20), "false-neg-at-20")
}

// BenchmarkAblationLinkage compares single-link against complete-link
// clustering on a block-page corpus.
func BenchmarkAblationLinkage(b *testing.B) {
	docs, labels := benchCorpus(140)
	_, vecs := textfeat.FitTransform(docs)
	opts := cluster.DefaultOptions()
	var singleN, completeN int
	var singleP, completeP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single := cluster.SingleLink(docs, vecs, opts)
		complete := cluster.CompleteLink(docs, vecs, opts)
		singleN, completeN = len(single), len(complete)
		singleP, completeP = cluster.Purity(single, labels), cluster.Purity(complete, labels)
	}
	b.ReportMetric(float64(singleN), "single-link-clusters")
	b.ReportMetric(float64(completeN), "complete-link-clusters")
	b.ReportMetric(singleP, "single-link-purity")
	b.ReportMetric(completeP, "complete-link-purity")
}

// BenchmarkAblationHeaders measures the §7.3 suggestion: full browser
// headers vs a bare UA on VPS probes (false-positive suppression).
func BenchmarkAblationHeaders(b *testing.B) {
	sys := New(Options{Scale: 0.05, Seed: 77})
	var cfg worldgen.Config = sys.World.Cfg
	_ = cfg
	fleet := proxy.VPSFleet(sys.World, []geo.CountryCode{"US", "IR"})
	var domains []string
	for _, d := range sys.World.Top10K() {
		if d.FrontedBy(worldgen.Akamai) && !d.Unreachable {
			domains = append(domains, d.Name)
		}
	}
	count403 := func(headers map[string]string, phase string) int {
		res := lumscan.ScanVPS(fleet, domains, lumscan.Config{Samples: 1, Headers: headers, Phase: phase})
		n := 0
		for i := range res.Samples {
			if res.Samples[i].Status == 403 {
				n++
			}
		}
		return n
	}
	var bare, full int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bare = count403(lumscan.ZGrabHeaders(), "ablate-bare")
		full = count403(lumscan.BrowserHeaders(), "ablate-full")
	}
	b.ReportMetric(float64(bare), "bare-ua-403s")
	b.ReportMetric(float64(full), "browser-headers-403s")
}

// BenchmarkAblationRepCountries compares the top-20-country
// representative trick against using every country (§4.1.2's volume
// reduction).
func BenchmarkAblationRepCountries(b *testing.B) {
	_, r10, _, _ := fixture(b)
	b.ResetTimer()
	var top20, all int
	for i := 0; i < b.N; i++ {
		repAll := outlier.NewRepresentative()
		for j := range r10.Initial.Samples {
			sm := &r10.Initial.Samples[j]
			if sm.OK() && sm.BodyLen > 0 {
				repAll.Observe(sm.Domain, int(sm.BodyLen))
			}
		}
		top20, all = r10.RepSampleCount, 0
		for j := range r10.Initial.Samples {
			sm := &r10.Initial.Samples[j]
			if sm.OK() && sm.BodyLen > 0 {
				all++
			}
		}
	}
	b.ReportMetric(float64(top20), "top20-samples")
	b.ReportMetric(float64(all), "all-samples")
}

// --- §7.3 extension benches -----------------------------------------------

func BenchmarkExtensionTimeouts(b *testing.B) {
	sys, r10, _, _ := fixture(b)
	var res *TimeoutResult
	for i := 0; i < b.N; i++ {
		res = sys.AnalyzeTimeouts(r10, 8)
	}
	b.ReportMetric(float64(len(res.Findings)), "timeout-geoblockers")
}

func BenchmarkExtensionAppLayer(b *testing.B) {
	sys, r10, _, _ := fixture(b)
	domains := analysis.RespondingDomains(r10.Initial)
	if len(domains) > 120 {
		domains = domains[:120]
	}
	targets := []CountryCode{"IR", "SY", "CN", "RU", "BR"}
	var res *AppLayerResult
	for i := 0; i < b.N; i++ {
		res = sys.RunAppLayerStudy(domains, "US", targets)
	}
	b.ReportMetric(float64(len(res.Findings)), "discriminating-pairs")
}

func BenchmarkExtensionRegional(b *testing.B) {
	sys, r10, _, _ := fixture(b)
	seen := map[string]bool{}
	var domains []string
	for _, f := range r10.Candidates {
		if !seen[f.DomainName] {
			seen[f.DomainName] = true
			domains = append(domains, f.DomainName)
		}
	}
	var findings []RegionalFinding
	for i := 0; i < b.N; i++ {
		findings = sys.RunRegionalAnalysis(domains, 9)
	}
	b.ReportMetric(float64(len(findings)), "region-granular-domains")
}

// --- Micro-benchmarks on the hot paths -----------------------------------

func BenchmarkLumscanCountry(b *testing.B) {
	sys, _, _, _ := fixture(b)
	net := proxy.NewNetwork(sys.World)
	var domains []string
	for _, d := range sys.World.Top10K()[:50] {
		domains = append(domains, d.Name)
	}
	countries := []geo.CountryCode{"DE"}
	tasks := lumscan.CrossProduct(len(domains), 1)
	cfg := lumscan.DefaultConfig()
	cfg.Samples = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := lumscan.Scan(net, domains, countries, tasks, cfg)
		if len(res.Samples) != len(domains) {
			b.Fatal("wrong sample count")
		}
	}
	b.ReportMetric(float64(len(domains)), "requests/op")
}

func BenchmarkCDNServe(b *testing.B) {
	sys, _, _, _ := fixture(b)
	d := sys.World.Top10K()[0]
	ip, _ := sys.World.Geo.HostIP("FR", 1)
	h := make(http.Header)
	for k, v := range lumscan.BrowserHeaders() {
		h.Set(k, v)
	}
	req := cdn.Request{
		Domain: d, Host: d.Name, Path: "/", Method: "GET", Scheme: "https",
		ClientIP: ip, Header: h,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.SampleSeed = uint64(i)
		resp := cdn.Serve(sys.World, req)
		if resp.BodyLen == 0 {
			b.Fatal("empty response")
		}
	}
}

func BenchmarkFingerprintClassify(b *testing.B) {
	cls := fingerprint.NewClassifier()
	bodies := make([]string, 0, len(blockpage.Kinds()))
	for _, k := range blockpage.Kinds() {
		bodies = append(bodies, blockpage.Render(k, blockpage.Vars{
			Domain: "bench.example.com", ClientIP: "10.0.0.1",
			CountryName: "Iran", RayID: "abcdef0123456789", Nonce: "12345678",
		}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cls.Classify(bodies[i%len(bodies)]) == blockpage.KindNone {
			b.Fatal("classification failed")
		}
	}
}

func BenchmarkTFIDFTransform(b *testing.B) {
	docs, _ := benchCorpus(60)
	v := textfeat.Fit(docs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Transform(docs[i%len(docs)])
	}
}

func BenchmarkSingleLink(b *testing.B) {
	docs, _ := benchCorpus(200)
	_, vecs := textfeat.FitTransform(docs)
	opts := cluster.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.SingleLink(docs, vecs, opts)
	}
}

func BenchmarkGeoLocate(b *testing.B) {
	db := geo.NewDB()
	ips := make([]geo.IP, 64)
	for i := range ips {
		ip, _ := db.HostIP("DE", uint64(i*977))
		ips[i] = ip
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Locate(ips[i%len(ips)]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkOriginRender(b *testing.B) {
	site := blockpage.NewOriginSite("bench.example.com", stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := site.Render(uint64(i))
		if len(body) != site.Length(uint64(i)) {
			b.Fatal("length mismatch")
		}
	}
}

func BenchmarkOriginLength(b *testing.B) {
	site := blockpage.NewOriginSite("bench.example.com", stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = site.Length(uint64(i))
	}
}

// --- helpers --------------------------------------------------------------

func benchCorpus(n int) (docs []string, labels []string) {
	kinds := blockpage.Kinds()
	for i := 0; i < n; i++ {
		k := kinds[i%len(kinds)]
		docs = append(docs, blockpage.Render(k, blockpage.Vars{
			Domain:      "site" + itoa(i) + ".example",
			ClientIP:    "10.9.8.7",
			CountryName: []string{"Iran", "Syria", "Cuba"}[i%3],
			RayID:       itoa(i*2654435761) + "beef",
			Nonce:       itoa(i * 40503),
		}))
		labels = append(labels, k.String())
	}
	return docs, labels
}

func itoa(n int) string {
	if n < 0 {
		n = -n
	}
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkAblationDendrogram builds the full single-link hierarchy
// over the outlier corpus and sweeps cut thresholds — the exploration
// the paper's analysts did before settling on a cut.
func BenchmarkAblationDendrogram(b *testing.B) {
	_, r10, _, _ := fixture(b)
	docs := make([]string, 0, len(r10.Outliers))
	for i := range r10.Outliers {
		docs = append(docs, r10.Outliers[i].Body)
	}
	if len(docs) > 400 {
		docs = docs[:400]
	}
	_, vecs := textfeat.FitTransform(docs)
	var d *cluster.Dendrogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = cluster.BuildDendrogram(docs, vecs, 8)
	}
	counts := d.ClusterCounts([]float64{0.6, 0.82, 0.95})
	b.ReportMetric(float64(counts[0]), "clusters-at-60")
	b.ReportMetric(float64(counts[1]), "clusters-at-82")
	b.ReportMetric(float64(counts[2]), "clusters-at-95")
}

// --- Scan engine benches (scheduler / session / fetch / sink) -------------

// scanBenchWorld builds a country-skewed workload: one country carries
// 10× the tasks of the rest — the shape that serialized the old
// one-worker-per-country engine.
func scanBenchWorld(b *testing.B) (*proxy.Network, []string, []geo.CountryCode, []lumscan.Task) {
	b.Helper()
	sys := New(Options{Scale: benchScale, Seed: 403})
	net := proxy.NewNetwork(sys.World)
	var domains []string
	for _, d := range sys.World.Top10K()[:400] {
		domains = append(domains, d.Name)
	}
	countries := []geo.CountryCode{"US", "DE", "IR", "SY", "BR", "IN", "RU", "CN"}
	var tasks []lumscan.Task
	for d := range domains {
		tasks = append(tasks, lumscan.Task{Domain: int32(d), Country: 0})
	}
	for c := 1; c < len(countries); c++ {
		for d := 0; d < len(domains)/10; d++ {
			tasks = append(tasks, lumscan.Task{Domain: int32(d), Country: int16(c)})
		}
	}
	return net, domains, countries, tasks
}

func scanBenchConfig() lumscan.Config {
	cfg := lumscan.DefaultConfig()
	cfg.Samples = 2
	cfg.Phase = "bench-engine"
	cfg.Concurrency = runtime.GOMAXPROCS(0)
	return cfg
}

// BenchmarkScanCollect materializes the full Result (bodies included),
// reporting throughput and allocation per sample.
func BenchmarkScanCollect(b *testing.B) {
	net, domains, countries, tasks := scanBenchWorld(b)
	cfg := scanBenchConfig()
	total := 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := lumscan.Scan(net, domains, countries, tasks, cfg)
		total += len(res.Samples)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(max(total, 1)), "alloc-bytes/sample")
}

// BenchmarkScanStreaming folds each sample through a counting sink and
// drops it — the Top-1M memory story. Compare alloc-bytes/sample with
// BenchmarkScanCollect for the streaming win.
func BenchmarkScanStreaming(b *testing.B) {
	net, domains, countries, tasks := scanBenchWorld(b)
	cfg := scanBenchConfig()
	total, blocks := 0, 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := lumscan.ScanStream(context.Background(), net, domains, countries, tasks, cfg,
			lumscan.SinkFunc(func(s lumscan.Sample) {
				total++
				if s.OK() && s.Status == 403 {
					blocks++
				}
			}))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(max(total, 1)), "alloc-bytes/sample")
}

// BenchmarkScanInstrumented reruns the streaming scan with a telemetry
// registry attached and reports the instrumentation cost against an
// uninstrumented run of the same workload in the same process. The
// overhead-ratio metric is the acceptance pin for the telemetry layer:
// it must stay below 1.05 (measured 2026-08: ~1.00–1.02 — counter adds
// and the virtual clock's atomic load are noise against request cost).
func BenchmarkScanInstrumented(b *testing.B) {
	net, domains, countries, tasks := scanBenchWorld(b)
	sink := lumscan.SinkFunc(func(lumscan.Sample) {})
	run := func(reg *telemetry.Registry) time.Duration {
		cfg := scanBenchConfig()
		cfg.Metrics = reg
		start := time.Now() //geolint:allow determinism benchmarking wall time
		if err := lumscan.ScanStream(context.Background(), net, domains, countries, tasks, cfg, sink); err != nil {
			b.Fatal(err)
		}
		return time.Since(start) //geolint:allow determinism benchmarking wall time
	}
	run(nil) // warm the world's lazy caches off the clock
	var bare, instrumented time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bare += run(nil)
		instrumented += run(telemetry.New())
	}
	b.ReportMetric(bare.Seconds()/float64(b.N), "bare-sec/op")
	b.ReportMetric(instrumented.Seconds()/float64(b.N), "instrumented-sec/op")
	b.ReportMetric(instrumented.Seconds()/bare.Seconds(), "overhead-ratio")
}

// simRTT adds a fixed per-request delay in front of a transport,
// modeling the network-bound regime the real study ran in: the
// simulated world answers in microseconds, Luminati exits did not.
type simRTT struct {
	rt    http.RoundTripper
	delay time.Duration
}

func (t simRTT) RoundTrip(req *http.Request) (*http.Response, error) {
	time.Sleep(t.delay) //geolint:allow determinism benchmarking wall time
	return t.rt.RoundTrip(req)
}

// BenchmarkScanSkewedSharded pits the work-stealing scheduler against
// the old one-worker-per-country shape (recovered by making each
// country a single shard) on the skewed workload, under a simulated
// 200µs round-trip. With one shard per country the skewed country's
// request chain serializes behind that latency; sharding overlaps it.
// The speedup metric is the acceptance check for the scheduler
// refactor.
func BenchmarkScanSkewedSharded(b *testing.B) {
	net, domains, countries, tasks := scanBenchWorld(b)
	run := func(shardSize int) time.Duration {
		cfg := scanBenchConfig()
		cfg.ShardSize = shardSize
		cfg.Concurrency = 16
		cfg.WrapTransport = func(rt http.RoundTripper) http.RoundTripper {
			return simRTT{rt: rt, delay: 200 * time.Microsecond}
		}
		start := time.Now() //geolint:allow determinism benchmarking wall time
		res := lumscan.Scan(net, domains, countries, tasks, cfg)
		if len(res.Samples) == 0 {
			b.Fatal("empty scan")
		}
		return time.Since(start) //geolint:allow determinism benchmarking wall time
	}
	run(0) // warm the world's lazy caches off the clock
	var sharded, monolithic time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		monolithic += run(1 << 30) // one shard per country: the seed engine's shape
		sharded += run(0)          // default shard size: the skewed country fans out
	}
	b.ReportMetric(sharded.Seconds()/float64(b.N), "sharded-sec/op")
	b.ReportMetric(monolithic.Seconds()/float64(b.N), "monolithic-sec/op")
	b.ReportMetric(monolithic.Seconds()/sharded.Seconds(), "speedup")
}

// BenchmarkScanColdVsResume prices the journal's core promise: a cold
// run fetches everything while journaling it, and a resumed run over
// the finished journal replays the identical samples from disk with
// zero fetching. cold-sec/op is the journaling run (the fsync and
// encode overhead rides along), resume-sec/op is recovery plus replay,
// and replay-speedup is how much cheaper re-materializing a completed
// phase is than scanning it again.
func BenchmarkScanColdVsResume(b *testing.B) {
	net, domains, countries, tasks := scanBenchWorld(b)
	sink := lumscan.SinkFunc(func(lumscan.Sample) {})
	run := func(dir string) time.Duration {
		st, err := runstore.Open(dir, runstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		start := time.Now() //geolint:allow determinism benchmarking wall time
		err = st.Scan(runstore.Scan{
			Key:         "bench-engine",
			Fingerprint: 403,
			Cfg:         scanBenchConfig(),
			Sink:        sink,
			Run: func(cfg lumscan.Config, s lumscan.Sink) error {
				return lumscan.ScanStream(context.Background(), net, domains, countries, tasks, cfg, s)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start) //geolint:allow determinism benchmarking wall time
	}
	run(b.TempDir()) // warm the world's lazy caches off the clock
	var cold, resume time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		cold += run(dir)   // fresh journal: fetch everything, journal it
		resume += run(dir) // finished journal: recover, replay, fetch nothing
	}
	b.ReportMetric(cold.Seconds()/float64(b.N), "cold-sec/op")
	b.ReportMetric(resume.Seconds()/float64(b.N), "resume-sec/op")
	b.ReportMetric(cold.Seconds()/resume.Seconds(), "replay-speedup")
}
