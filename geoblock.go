// Package geoblock is a full reproduction of "403 Forbidden: A Global
// View of CDN Geoblocking" (McDonald et al., IMC 2018) as a Go library:
// a deterministic simulated Internet — CDN edges, a residential proxy
// mesh, national censorship, GeoIP — plus the paper's semi-automated
// detection system (Lumscan scanning, page-length outlier extraction,
// TF-IDF clustering, fingerprinting, resampling with the 80% agreement
// threshold) and analyzers for every table and figure in the paper's
// evaluation.
//
// Quick start:
//
//	sys := geoblock.New(geoblock.Options{Scale: 0.1})
//	res := sys.RunTop10K(geoblock.Top10KConfig{})
//	for _, f := range res.Findings {
//	    fmt.Printf("%s blocked in %s by %v\n", f.DomainName, f.Country, f.Kind)
//	}
//
// The heavy lifting lives in the internal packages (see DESIGN.md for
// the map); this package is the stable entry point that the example
// programs, the command-line tools and the benchmark harness share.
package geoblock

import (
	"context"
	"sync/atomic"

	"geoblock/internal/cfrules"
	"geoblock/internal/fabric"
	"geoblock/internal/geo"
	"geoblock/internal/ooni"
	"geoblock/internal/pipeline"
	"geoblock/internal/proxy"
	"geoblock/internal/runstore"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/verdict"
	"geoblock/internal/worldgen"
)

// Re-exported result and config types, so callers only import this
// package.
type (
	// Top10KConfig tunes the §4 study; the zero value uses the paper's
	// parameters (3 initial samples, 20 confirmation samples, 80%
	// threshold, 20 reference countries, 30% length cutoff).
	Top10KConfig = pipeline.Top10KConfig
	// Top10KResult is the §4 study output.
	Top10KResult = pipeline.Top10KResult
	// Top1MConfig tunes the §5 study.
	Top1MConfig = pipeline.Top1MConfig
	// Top1MResult is the §5 study output.
	Top1MResult = pipeline.Top1MResult
	// Finding is one confirmed geoblocking observation.
	Finding = pipeline.Finding
	// ExploreResult is the §3.1 exploration output.
	ExploreResult = pipeline.ExploreResult
	// ConsistencyExperiment is the Figure 1/3 machinery.
	ConsistencyExperiment = pipeline.ConsistencyExperiment
	// OONICorpus is a synthesized censorship-measurement corpus.
	OONICorpus = ooni.Corpus
	// OONIAnalysis is the §7.1 confound readout.
	OONIAnalysis = ooni.Analysis
	// CloudflareRules is the §6 firewall-rules snapshot.
	CloudflareRules = cfrules.Dataset
	// WorldConfig exposes every world-calibration knob.
	WorldConfig = worldgen.Config
	// TimeoutResult is the §7.3 timeout-geoblocking extension output.
	TimeoutResult = pipeline.TimeoutResult
	// AppLayerResult is the §7.3 application-layer extension output.
	AppLayerResult = pipeline.AppLayerResult
	// RegionalFinding is one §4.2.2-style region-granular observation.
	RegionalFinding = pipeline.RegionalFinding
	// CountryCode is an ISO 3166-1 alpha-2 country code.
	CountryCode = geo.CountryCode
	// RunStore is a crash-safe journal of scan samples and checkpoints;
	// attach one via Options.Store to make a study resumable.
	RunStore = runstore.Store
	// RunStoreOptions tunes a RunStore (segment size, metrics, and the
	// chaos crash hook).
	RunStoreOptions = runstore.Options
	// RunStorePhase is the journaled state of one study phase.
	RunStorePhase = runstore.PhaseInfo
	// FabricCoordinator distributes a study's scan phases across worker
	// processes (see NewFabric and Options.Fabric).
	FabricCoordinator = fabric.Coordinator
	// FabricOptions tunes a FabricCoordinator.
	FabricOptions = fabric.Options
	// FabricStudySpec is what workers regenerate the study's world from.
	FabricStudySpec = fabric.StudySpec
	// FabricFaultSpec replicates a named chaos profile on every worker.
	FabricFaultSpec = fabric.FaultSpec
	// FabricWorker executes leased scan units for a remote coordinator.
	FabricWorker = fabric.Worker
	// FabricWorkerOptions tunes a FabricWorker.
	FabricWorkerOptions = fabric.WorkerOptions
	// VerdictSnapshot is an immutable compiled (domain × country)
	// block-verdict matrix — what the serving edge answers from (see
	// System.Verdicts and Options.VerdictOut).
	VerdictSnapshot = verdict.Snapshot
	// Verdict is one (domain, country) answer from a VerdictSnapshot.
	Verdict = verdict.Verdict
	// VerdictSource is the raw input to CompileVerdicts for callers that
	// assemble matrices outside a study.
	VerdictSource = verdict.Source
	// Tracer collects a run's wide events (see internal/trace); build
	// one with NewTracer and attach it via Options.Trace.
	Tracer = trace.Tracer
	// TraceSpanCtx is a propagated trace context (trace ID + span ID).
	TraceSpanCtx = trace.SpanCtx
)

// NewTracer builds a tracer rooted at the deterministic context the
// given world seed derives. Chain the tracer's With* methods to add a
// wall clock (for Perfetto-meaningful timestamps) or a flight-recorder
// sink before passing it to Options.Trace.
func NewTracer(seed uint64) *Tracer {
	if seed == 0 {
		seed = worldgen.DefaultConfig().Seed
	}
	return trace.New(trace.Root(seed))
}

// ErrFabricWorkerKilled is returned by a FabricWorker's Run when its
// chaos kill hook fires mid-study.
var ErrFabricWorkerKilled = fabric.ErrKilled

// NewFabric builds the coordinator side of a distributed study. Serve
// coordinator.Handler() over HTTP, pass the coordinator via
// Options.Fabric, and the study's residential scan phases execute on
// whatever workers (cmd/scanworker, or NewFabricWorker embedders) lease
// from it — with output byte-identical to an in-process run. Call
// FinishStudy when the study returns so workers exit.
func NewFabric(opts FabricOptions) *FabricCoordinator { return fabric.New(opts) }

// NewFabricWorker dials a coordinator and regenerates its world; the
// returned worker's Run loop executes leased units until the study
// completes.
func NewFabricWorker(ctx context.Context, opts FabricWorkerOptions) (*FabricWorker, error) {
	return fabric.NewWorker(ctx, opts)
}

// OpenRunStore opens (or creates) a run journal in dir, recovering
// from any crash-torn tail. Attach the store via Options.Store and a
// study will journal every scan phase; reopening the same directory
// with the same study configuration resumes where the last run died,
// replaying completed work from disk instead of refetching it.
func OpenRunStore(dir string, opts RunStoreOptions) (*RunStore, error) {
	return runstore.Open(dir, opts)
}

// Options configures a System.
type Options struct {
	// Seed drives all randomness; the same seed reproduces the same
	// world and the same study results bit for bit. 0 means the default
	// seed (403).
	Seed uint64
	// Scale in (0, 1] shrinks every population uniformly; 1.0 (the
	// default) is paper scale (10,000 + 152k CDN customers, 177
	// countries).
	Scale float64
	// World, when non-nil, overrides Seed/Scale with a full custom
	// calibration.
	World *WorldConfig
	// Log, when non-nil, receives progress lines from long runs.
	Log func(format string, args ...any)
	// Ctx, when non-nil, cancels in-flight scans when it expires; a
	// cancelled study returns partial results. Nil means never cancel.
	Ctx context.Context
	// Metrics, when non-nil, replaces the study's default virtual-clock
	// telemetry registry. CLIs that want wall-clock span durations and a
	// live /debug/metrics view inject telemetry.NewWithClock(telemetry.Wall{})
	// here; leaving it nil keeps snapshots deterministic.
	Metrics *telemetry.Registry
	// Trace, when non-nil, turns on wide-event tracing: every scan
	// phase, scheduler shard, session open, fetch, and verdict-edge
	// slow lookup records into it, and Tracer.Snapshot() exports the
	// run as Chrome trace-event JSON (the CLIs' -trace flag). Tracing
	// never influences results; deterministic-class events are
	// byte-identical at any concurrency or worker count.
	Trace *Tracer
	// Store, when non-nil, journals every scan phase to disk and
	// resumes interrupted studies from their checkpoints (see
	// OpenRunStore). Results are byte-identical with or without it.
	Store *RunStore
	// Fabric, when non-nil, routes every residential scan phase through
	// the distributed coordinator instead of the in-process engine (see
	// NewFabric). Composes with Store: the coordinator's completions are
	// journaled and resumed exactly like local work.
	Fabric *FabricCoordinator
	// VerdictOut, when non-nil, receives the verdict snapshot each
	// completed study compiles from its confirmed findings — the hook a
	// serving daemon uses to swap in fresh answers. The snapshot is also
	// retained on the System (see Verdicts) regardless.
	VerdictOut func(*VerdictSnapshot)
}

// System is a simulated Internet plus the measurement apparatus over
// it. Create one with New; it is safe to run multiple studies against
// the same System, but note that studies advance the world's policy
// clock (as time passed during the real study, too).
type System struct {
	World *worldgen.World
	study *pipeline.Study

	// verdicts holds the latest compiled verdict snapshot; swapped
	// atomically when a study completes so concurrent readers always see
	// one consistent matrix.
	verdicts atomic.Pointer[verdict.Snapshot]
}

// New builds the world and the measurement infrastructure.
func New(opts Options) *System {
	var cfg worldgen.Config
	if opts.World != nil {
		cfg = *opts.World
	} else {
		cfg = worldgen.DefaultConfig()
		if opts.Seed != 0 {
			cfg.Seed = opts.Seed
		}
		if opts.Scale != 0 {
			cfg.Scale = opts.Scale
		}
	}
	w := worldgen.Generate(cfg)
	s := pipeline.New(w)
	s.Log = opts.Log
	s.Ctx = opts.Ctx
	if opts.Metrics != nil {
		s.Metrics = opts.Metrics
	}
	s.Trace = opts.Trace
	s.Store = opts.Store
	if opts.Fabric != nil {
		opts.Fabric.BindWorld(w)
		s.Runner = opts.Fabric.RunPhase
	}
	sys := &System{World: w, study: s}
	s.VerdictOut = func(snap *verdict.Snapshot) {
		sys.setVerdicts(snap)
		if opts.VerdictOut != nil {
			opts.VerdictOut(snap)
		}
	}
	return sys
}

// setVerdicts publishes a freshly compiled snapshot. The atomic swap
// lives here, with Verdicts, so the pointer discipline has one home.
func (s *System) setVerdicts(snap *verdict.Snapshot) {
	s.verdicts.Store(snap)
}

// Verdicts returns the verdict snapshot compiled by the most recently
// completed study, or nil before the first one. Safe to call from any
// goroutine; successive studies swap the pointer atomically.
func (s *System) Verdicts() *VerdictSnapshot {
	return s.verdicts.Load()
}

// CompileVerdicts builds a verdict snapshot directly from a source —
// for serving layers fed from something other than a live study (a
// decoded file, a hand-built matrix in tests).
func CompileVerdicts(src VerdictSource) (*VerdictSnapshot, error) {
	return verdict.Compile(src)
}

// DecodeVerdicts parses a snapshot previously serialized with
// VerdictSnapshot.Encode — how an edge daemon loads a matrix cold.
func DecodeVerdicts(b []byte) (*VerdictSnapshot, error) {
	return verdict.Decode(b)
}

// Err reports the first scan abort the system's study observed — nil
// after a complete run, a pipeline.PhaseError naming the truncated
// phase otherwise.
func (s *System) Err() error { return s.study.Err() }

// Metrics exposes the system's telemetry registry: scan counters, error
// tallies, and the phase-span tree accumulate here as studies run.
func (s *System) Metrics() *telemetry.Registry {
	return s.study.Metrics
}

// Trace exposes the system's tracer — nil unless Options.Trace was
// set. Snapshot it after a study for the full event stream.
func (s *System) Trace() *Tracer {
	return s.study.Trace
}

// Net exposes the system's residential proxy mesh — the seam for
// installing a fault-injection hook (internal/faults) before a chaos
// run.
func (s *System) Net() *proxy.Network {
	return s.study.Net
}

// RunTop10K executes the Alexa Top-10K study of §4: safe-list
// filtering, the 3-sample snapshot across 177 countries, outlier
// extraction, clustering and labeling, recall evaluation, and the
// resample-and-confirm flow.
func (s *System) RunTop10K(cfg Top10KConfig) *Top10KResult {
	return s.study.RunTop10K(cfg)
}

// RunTop1M executes the Top-1M CDN-customer study of §5: population
// discovery, the 5% sample, explicit confirmation, and the non-explicit
// consistency analysis for Akamai and Incapsula.
func (s *System) RunTop1M(cfg Top1MConfig) *Top1MResult {
	return s.study.RunTop1M(cfg)
}

// RunExploration executes the §3.1 VPS exploration: NS-based customer
// discovery, ZGrab-style probing from 16 VPSes, and browser
// verification of every flagged pair.
func (s *System) RunExploration() *ExploreResult {
	return s.study.RunExploration()
}

// RunConsistencyExperiment runs the Figure 1/3 subsampling experiment
// over the confirmed findings of a Top-10K run.
func (s *System) RunConsistencyExperiment(r *Top10KResult, population, draws int, sizes []int) *ConsistencyExperiment {
	return s.study.RunConsistencyExperiment(r, population, draws, sizes)
}

// SynthesizeOONI builds a censorship-measurement corpus over the
// world's Citizen Lab test list (§7.1).
func (s *System) SynthesizeOONI(perPair int) *OONICorpus {
	return ooni.Synthesize(s.World, ooni.Config{MeasurementsPerPair: perPair})
}

// AnalyzeOONI runs the geoblocking-confound analysis over a corpus.
func (s *System) AnalyzeOONI(c *OONICorpus) *OONIAnalysis {
	return ooni.Analyze(s.World, c)
}

// CloudflareRulesSnapshot synthesizes the §6 firewall-rules dataset at
// the system's scale.
func (s *System) CloudflareRulesSnapshot() *CloudflareRules {
	return cfrules.Synthesize(s.World.Cfg.Seed, s.World.Cfg.Scale)
}

// AnalyzeTimeouts runs the §7.3 timeout-geoblocking extension over a
// Top-10K run: domains that consistently time out from specific
// countries while answering everywhere else.
func (s *System) AnalyzeTimeouts(r *Top10KResult, resamples int) *TimeoutResult {
	return s.study.AnalyzeTimeouts(r, resamples)
}

// RunAppLayerStudy runs the §7.3 application-layer extension: fetch
// each domain from a reference country and the targets, and report
// removed features, region notices, and price markups.
func (s *System) RunAppLayerStudy(domains []string, ref CountryCode, targets []CountryCode) *AppLayerResult {
	return s.study.RunAppLayerStudy(domains, ref, targets)
}

// RunRegionalAnalysis probes domains through Crimean vs mainland-
// Ukraine exits and reports region-only blocking (§4.2.2 granularity).
func (s *System) RunRegionalAnalysis(domains []string, samples int) []RegionalFinding {
	return s.study.RunRegionalAnalysis(domains, samples)
}

// DefaultWorldConfig returns the paper-scale calibration for callers
// that want to tweak individual knobs before passing Options.World.
func DefaultWorldConfig() WorldConfig { return worldgen.DefaultConfig() }
