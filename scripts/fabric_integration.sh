#!/bin/sh
# Multi-process fabric integration: the distributed-identity contract
# checked across real OS processes, not goroutines. One lumscan
# coordinator and three scanworker processes — one of which is killed
# by chaos injection mid-shard so its lease expires and the shard is
# re-executed — must journal byte-identical segment files to a
# single-process run of the same scan.
#
# Run via `make fabric-test`. Needs only the go toolchain and a POSIX
# shell; everything happens under a temp directory that is cleaned up
# on exit.
set -eu

here=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$here"

work=$(mktemp -d "${TMPDIR:-/tmp}/fabric-integration.XXXXXX")
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "fabric-integration: building lumscan + scanworker"
go build -o "$work/lumscan" ./cmd/lumscan
go build -o "$work/scanworker" ./cmd/scanworker

# The scan: the full safe population at a small scale, multi-country,
# with chaos injected so the retry/outage paths journal too. Identical
# flags for both runs.
scan_flags="-domains all -countries US,DE,IR,SY,BR -samples 2 -seed 11 -scale 0.02 -faults flaky50 -faultseed 3"

echo "fabric-integration: single-process reference run"
"$work/lumscan" $scan_flags -store "$work/ref" >"$work/ref.out" 2>"$work/ref.err" \
    || { echo "single-process run failed:"; cat "$work/ref.err"; exit 1; }

echo "fabric-integration: coordinator + 3 workers (one chaos-killed)"
# The coordinator records the run's merged wide-event trace: its own
# driver events plus every worker's unit events, shipped upstream in
# shard completions and merged in canonical order. The file survives
# the temp-dir cleanup as the run's artifact (CI uploads it).
trace_artifact="${FABRIC_TRACE_ARTIFACT:-$here/fabric-trace.json}"
"$work/lumscan" $scan_flags -store "$work/fab" -trace "$trace_artifact" \
    -serve-fabric 127.0.0.1:0 -fabric-ready-file "$work/ready" \
    >"$work/fab.out" 2>"$work/fab.err" &
coord=$!
pids="$coord"

# The ready file holds the coordinator's bound address once it listens.
i=0
while [ ! -s "$work/ready" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "coordinator never wrote its ready file:"; cat "$work/fab.err"; exit 1
    fi
    sleep 0.1
done
addr=$(cat "$work/ready")

# Worker 1 is the victim: chaos kills it before it reports its first
# executed unit, forfeiting the lease. Workers 2 and 3 finish the study.
"$work/scanworker" -coordinator "http://$addr" -name victim -kill-after 1 -kill-seed 7 \
    >"$work/w1.out" 2>&1 &
victim=$!
pids="$pids $victim"
set +e
wait "$victim"
vstatus=$?
set -e
if [ "$vstatus" -ne 3 ]; then
    echo "victim worker exited $vstatus, want 3 (chaos kill):"; cat "$work/w1.out"; exit 1
fi
echo "fabric-integration: victim died as scripted (exit 3); survivors take over"

"$work/scanworker" -coordinator "http://$addr" -name w2 >"$work/w2.out" 2>&1 &
w2=$!
"$work/scanworker" -coordinator "http://$addr" -name w3 >"$work/w3.out" 2>&1 &
w3=$!
pids="$pids $w2 $w3"

wait "$coord"
wait "$w2"
wait "$w3"
pids=""

echo "fabric-integration: comparing journals"
for f in "$work/ref"/*; do
    name=$(basename "$f")
    if ! cmp -s "$f" "$work/fab/$name"; then
        echo "FAIL: journal file $name differs between single-process and fabric runs"
        exit 1
    fi
done
for f in "$work/fab"/*; do
    name=$(basename "$f")
    [ -e "$work/ref/$name" ] || { echo "FAIL: fabric journal has extra file $name"; exit 1; }
done

# The scan output itself (coverage table on stdout) must match too.
if ! cmp -s "$work/ref.out" "$work/fab.out"; then
    echo "FAIL: scan stdout differs between single-process and fabric runs"
    diff "$work/ref.out" "$work/fab.out" | head -20 || true
    exit 1
fi

# The merged trace must exist and be Chrome trace-event JSON with
# worker-executed unit events in it (the "fetch" spans run on workers,
# so their presence proves events crossed the wire).
if [ ! -s "$trace_artifact" ]; then
    echo "FAIL: coordinator wrote no trace artifact at $trace_artifact"
    exit 1
fi
if ! grep -q '"traceEvents"' "$trace_artifact"; then
    echo "FAIL: trace artifact is not Chrome trace-event JSON"
    head -5 "$trace_artifact"
    exit 1
fi
if ! grep -q '"fetch"' "$trace_artifact"; then
    echo "FAIL: merged trace carries no worker unit events"
    exit 1
fi
echo "fabric-integration: merged trace artifact at $trace_artifact"

echo "fabric-integration: PASS — fabric journal and output byte-identical to single-process"
