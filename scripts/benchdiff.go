// Command benchdiff gates the perf trajectory: it reads two geobench
// reports — the committed baseline and a freshly generated one — and
// fails (exit 1) when any gated metric regressed past the threshold.
//
//	go run ./scripts/benchdiff.go -base BENCH_7.json -new BENCH_9.json
//
// Three metrics are gated, the ones every PR's hot paths flow through:
// single-process samples_per_sec (higher is better), the verdict
// edge's ns_per_verdict_lookup, and the journal's ns_per_record (both
// lower is better). The fabric cells and resume speedup are reported
// for context but not gated — they time httptest round-trips and disk
// replay, which are too noisy for a hard CI threshold.
//
// The reader covers every schema since geobench/2; fields added by
// later schemas (allocs_per_sample, lease_wait_seconds) simply decode
// as zero from older baselines and are never gated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchReport is the subset of the geobench JSON the gate reads; it
// decodes any schema from geobench/2 on.
type benchReport struct {
	Schema        string `json:"schema"`
	SingleProcess struct {
		SamplesPerSec   float64 `json:"samples_per_sec"`
		AllocsPerSample float64 `json:"allocs_per_sample"`
	} `json:"single_process"`
	Encode struct {
		NsPerRecord float64 `json:"ns_per_record"`
	} `json:"encode"`
	Verdict struct {
		NsPerVerdictLookup float64 `json:"ns_per_verdict_lookup"`
		AllocsPerLookup    float64 `json:"allocs_per_lookup"`
	} `json:"verdict"`
}

func load(path string) (benchReport, error) {
	var r benchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema == "" {
		return r, fmt.Errorf("%s: not a geobench report (no schema field)", path)
	}
	return r, nil
}

// gate is one compared metric. higherBetter flips the regression
// direction: a drop in samples/sec is a regression, a drop in ns/op
// is an improvement.
type gate struct {
	name         string
	base, new    float64
	higherBetter bool
}

// regressPct returns how far new moved in the bad direction, as a
// percentage of base; improvements come out negative.
func (g gate) regressPct() float64 {
	if g.base == 0 {
		return 0
	}
	if g.higherBetter {
		return (g.base - g.new) / g.base * 100
	}
	return (g.new - g.base) / g.base * 100
}

func main() {
	base := flag.String("base", "BENCH_7.json", "baseline geobench report")
	fresh := flag.String("new", "BENCH_9.json", "freshly generated geobench report")
	maxRegress := flag.Float64("max-regress", 15, "fail when any gated metric regresses past this percentage")
	flag.Parse()

	baseRep, err := load(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	gates := []gate{
		{"samples_per_sec", baseRep.SingleProcess.SamplesPerSec, newRep.SingleProcess.SamplesPerSec, true},
		{"ns_per_verdict_lookup", baseRep.Verdict.NsPerVerdictLookup, newRep.Verdict.NsPerVerdictLookup, false},
		{"ns_per_record", baseRep.Encode.NsPerRecord, newRep.Encode.NsPerRecord, false},
	}

	fmt.Printf("benchdiff: %s (%s) -> %s (%s), gate %.0f%%\n",
		*base, baseRep.Schema, *fresh, newRep.Schema, *maxRegress)
	failed := false
	for _, g := range gates {
		pct := g.regressPct()
		verdict := "ok"
		if pct > *maxRegress {
			verdict = "REGRESSION"
			failed = true
		} else if pct < 0 {
			verdict = "improved"
		}
		fmt.Printf("  %-22s %12.3f -> %12.3f  %+7.2f%%  %s\n", g.name, g.base, g.new, pct, verdict)
	}

	// The zero-alloc lookup promise is absolute, not a percentage: any
	// allocation on the verdict serving path is a hard failure.
	if newRep.Verdict.AllocsPerLookup > 0 {
		fmt.Printf("  %-22s %12.3f -> %12.3f  allocating serving path  REGRESSION\n",
			"allocs_per_lookup", baseRep.Verdict.AllocsPerLookup, newRep.Verdict.AllocsPerLookup)
		failed = true
	}

	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: gated metric regressed more than %.0f%% against %s\n", *maxRegress, *base)
		os.Exit(1)
	}
	fmt.Println("benchdiff: within budget")
}
