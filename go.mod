module geoblock

go 1.22
