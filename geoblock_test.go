package geoblock

import (
	"sync"
	"testing"
)

var (
	once sync.Once
	sys  *System
	r10  *Top10KResult
)

func system(t *testing.T) (*System, *Top10KResult) {
	t.Helper()
	once.Do(func() {
		sys = New(Options{Scale: 0.05})
		r10 = sys.RunTop10K(Top10KConfig{})
	})
	return sys, r10
}

func TestPublicAPITop10K(t *testing.T) {
	s, r := system(t)
	if len(r.Findings) == 0 {
		t.Fatal("no findings through the public API")
	}
	for _, f := range r.Findings {
		if f.DomainName == "" || f.Country == "" {
			t.Fatalf("malformed finding %+v", f)
		}
		if _, ok := s.World.Lookup(f.DomainName); !ok {
			t.Fatalf("finding references unknown domain %s", f.DomainName)
		}
	}
}

func TestPublicAPIConsistency(t *testing.T) {
	s, r := system(t)
	exp := s.RunConsistencyExperiment(r, 20, 50, []int{3, 20})
	if exp.MeanFalseNegative(20) > exp.MeanFalseNegative(3)+1e-9 {
		t.Fatal("false negatives should not grow with sample size")
	}
}

func TestPublicAPIOONI(t *testing.T) {
	s, _ := system(t)
	corpus := s.SynthesizeOONI(1)
	a := s.AnalyzeOONI(corpus)
	if a.TotalMeasurements == 0 || a.GeoblockCases == 0 {
		t.Fatalf("OONI analysis empty: %+v", a)
	}
}

func TestPublicAPICloudflareRules(t *testing.T) {
	s, _ := system(t)
	ds := s.CloudflareRulesSnapshot()
	if len(ds.Rules) == 0 {
		t.Fatal("no rules synthesized")
	}
	baseline, _ := ds.Table9(nil)
	if baseline.PerTier == nil {
		t.Fatal("no baseline")
	}
}

func TestOptionsSeedChangesWorld(t *testing.T) {
	a := New(Options{Scale: 0.02, Seed: 1})
	b := New(Options{Scale: 0.02, Seed: 2})
	if a.World.Top10K()[0].Name == b.World.Top10K()[0].Name &&
		a.World.Top10K()[1].Name == b.World.Top10K()[1].Name {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestCustomWorldConfig(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Scale = 0.02
	cfg.CFGeoblockRate = 0
	cfg.CloudFrontGeoblockRate = 0
	s := New(Options{World: &cfg})
	if s.World.Cfg.CFGeoblockRate != 0 {
		t.Fatal("custom config not honored")
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	// Two independently constructed systems must produce bit-identical
	// study results: the property every EXPERIMENTS.md number relies on.
	run := func() *Top10KResult {
		s := New(Options{Scale: 0.02, Seed: 11})
		return s.RunTop10K(Top10KConfig{})
	}
	a, b := run(), run()
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i] != b.Findings[i] {
			t.Fatalf("finding %d differs:\n%+v\n%+v", i, a.Findings[i], b.Findings[i])
		}
	}
	if len(a.Outliers) != len(b.Outliers) || len(a.Clusters) != len(b.Clusters) {
		t.Fatal("pipeline intermediates differ")
	}
	for k, row := range a.Recall {
		if b.Recall[k] != row {
			t.Fatalf("recall for %v differs", k)
		}
	}
}

func TestExtensionsThroughFacade(t *testing.T) {
	s, r := system(t)
	tr := s.AnalyzeTimeouts(r, 6)
	if tr == nil {
		t.Fatal("nil timeout result")
	}
	al := s.RunAppLayerStudy(r.SafeDomains[:20], "US", []CountryCode{"IR", "CN"})
	if al.DomainsTested != 20 {
		t.Fatalf("tested = %d", al.DomainsTested)
	}
	_ = s.RunRegionalAnalysis([]string{"airbnb.fr"}, 6)
}
