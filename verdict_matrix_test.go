package geoblock

import (
	"bytes"
	"sync"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/verdict"
)

// TestVerdictMatrix is the serving-edge acceptance gate: the snapshot
// a completed study emits must byte-round-trip through the codec,
// answer every (domain, country) pair identically to the study's
// findings table, and stay correct under concurrent readers across an
// atomic snapshot swap.
func TestVerdictMatrix(t *testing.T) {
	wcfg := matrixWorld()
	var emitted *VerdictSnapshot
	s := New(Options{World: &wcfg, VerdictOut: func(snap *VerdictSnapshot) { emitted = snap }})
	r := s.RunTop10K(Top10KConfig{})
	if err := s.Err(); err != nil {
		t.Fatalf("study aborted: %v", err)
	}
	if emitted == nil {
		t.Fatal("study completed without emitting a verdict snapshot")
	}
	if s.Verdicts() != emitted {
		t.Fatal("System.Verdicts does not hold the emitted snapshot")
	}
	snap := emitted
	if snap.Version() != uint64(s.World.Clock()) || snap.Seed() != wcfg.Seed {
		t.Fatalf("snapshot provenance v%d seed %d, want v%d seed %d",
			snap.Version(), snap.Seed(), s.World.Clock(), wcfg.Seed)
	}
	if len(r.Findings) == 0 {
		t.Fatal("matrix world produced no findings; the test is vacuous")
	}
	if snap.Blocked() != len(r.Findings) {
		t.Fatalf("snapshot holds %d blocked pairs, study confirmed %d", snap.Blocked(), len(r.Findings))
	}

	// Every pair of the studied universe answers exactly per the
	// findings table: blocked with the confirmed kind, or clear.
	want := make(map[string]blockpage.Kind, len(r.Findings))
	for _, f := range r.Findings {
		want[f.DomainName+"/"+string(f.Country)] = f.Kind
	}
	for _, d := range r.SafeDomains {
		for _, cc := range r.Countries {
			v, ok := snap.Lookup(d, cc)
			if !ok {
				t.Fatalf("Lookup(%q, %q): studied pair outside snapshot universe", d, cc)
			}
			kind, blocked := want[d+"/"+string(cc)]
			if v.Blocked != blocked || v.Kind != kind {
				t.Fatalf("Lookup(%q, %q) = %+v, findings say blocked=%v kind=%v", d, cc, v, blocked, kind)
			}
		}
	}
	if _, ok := snap.Lookup("not-a-studied-domain.example", "CN"); ok {
		t.Fatal("unknown domain did not report outside-universe")
	}

	// Byte round trip through the codec.
	enc := snap.Encode()
	dec, err := DecodeVerdicts(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("snapshot does not byte-round-trip through the codec")
	}
	if dec.ETag() != snap.ETag() {
		t.Fatalf("ETag drifted across the codec: %s vs %s", dec.ETag(), snap.ETag())
	}

	// Correctness across an atomic swap under concurrent readers: an
	// "old" snapshot (no findings, version v-1) and the study's real
	// one alternate in the holder while readers verify that whichever
	// version they observe answers with that version's semantics.
	empty, err := CompileVerdicts(VerdictSource{
		Version:   snap.Version() - 1,
		Seed:      snap.Seed(),
		Domains:   r.SafeDomains,
		Countries: r.Countries,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := r.Findings[0]

	var holder verdict.Holder
	holder.Swap(empty)
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := holder.Load()
				v, ok := cur.Lookup(probe.DomainName, probe.Country)
				if !ok {
					errc <- "probe pair fell outside the universe"
					return
				}
				switch cur.Version() {
				case empty.Version():
					if v.Blocked {
						errc <- "empty snapshot answered blocked"
						return
					}
				case snap.Version():
					if !v.Blocked || v.Kind != probe.Kind {
						errc <- "study snapshot lost the probe finding"
						return
					}
				default:
					errc <- "reader observed a snapshot from neither version"
					return
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			holder.Swap(snap)
		} else {
			holder.Swap(empty)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	if got := holder.Load(); got != empty && got != snap {
		t.Fatal("holder holds a foreign snapshot after the swap storm")
	}
}
