package geoblock

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"geoblock/internal/analysis"
	"geoblock/internal/faults"
	"geoblock/internal/papertables"
	"geoblock/internal/telemetry"
)

// matrixWorld is the calibration every cell of the fabric matrix runs:
// identical to resumeRun's New(Options{Scale: 0.02, Seed: 11}).
func matrixWorld() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Seed = 11
	cfg.Scale = 0.02
	return cfg
}

// fabricYield is the test workers' Sleep hook: a scheduler yield
// instead of a wall-clock wait (this package is under the determinism
// lint, and the tests should not slow down either).
func fabricYield(time.Duration) { runtime.Gosched() }

// fabricRun executes the Top-10K study with every residential scan
// phase distributed across nWorkers worker loops (plus, when kill is
// set, one victim worker that dies mid-shard before reporting its
// first unit — exercising lease expiry and re-issue inside a real
// study). Returns the same (result, tables, snapshot) triple as
// resumeRun for byte comparison.
func fabricRun(t *testing.T, store *RunStore, reg *telemetry.Registry, tr *Tracer, nWorkers int, kill bool) (*Top10KResult, string, string) {
	t.Helper()
	wcfg := matrixWorld()
	coord := NewFabric(FabricOptions{
		Study:    FabricStudySpec{World: wcfg},
		LeaseTTL: -1, // instantly re-issuable: worker death needs no wall-clock wait
		Metrics:  reg,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	victimDone := make(chan struct{})
	victimErr := make(chan error, 1)
	if kill {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(victimDone)
			w, err := NewFabricWorker(ctx, FabricWorkerOptions{
				Coordinator: srv.URL, Name: "victim", Sleep: fabricYield,
				Kill: faults.New(7).WorkerDeath(1),
			})
			if err != nil {
				victimErr <- err
				return
			}
			victimErr <- w.Run(ctx)
		}()
	} else {
		close(victimDone)
	}
	workerErrs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Survivors hold back until the victim has died holding its
			// lease, so the re-issue path is exercised deterministically.
			<-victimDone
			w, err := NewFabricWorker(ctx, FabricWorkerOptions{
				Coordinator: srv.URL, Name: "w" + string(rune('a'+i)), Sleep: fabricYield,
			})
			if err != nil {
				workerErrs[i] = err
				return
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}

	s := New(Options{World: &wcfg, Metrics: reg, Store: store, Fabric: coord, Trace: tr})
	r := s.RunTop10K(Top10KConfig{})
	if err := s.Err(); err != nil {
		t.Fatalf("fabric study aborted: %v", err)
	}
	coord.FinishStudy()
	wg.Wait()
	if kill {
		if err := <-victimErr; !errors.Is(err, ErrFabricWorkerKilled) {
			t.Fatalf("victim worker died with %v, want ErrFabricWorkerKilled", err)
		}
	}
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	var tables bytes.Buffer
	papertables.PrintCoverage(&tables, "top10k initial snapshot", r.Outages, r.Coverage)
	papertables.PrintTable1(&tables, analysis.BuildTable1(r))
	rows, total := analysis.BuildTable2(r)
	papertables.PrintTable2(&tables, rows, total)
	papertables.PrintTable5(&tables, s.World.Geo, analysis.BuildTable5(s.World, r.Findings))
	return r, tables.String(), reg.Snapshot().Deterministic().Text()
}

// journalFiles reads every file of a run journal directory into a map
// for byte comparison (MANIFEST plus every segment file).
func journalFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestFabricMatrix is the PR's acceptance gate: a study distributed
// over a coordinator and {1, 2, 4} workers — including runs where a
// worker is killed mid-shard and its lease re-issued — produces the
// identical journal bytes, paper tables, findings, and deterministic
// telemetry snapshot as the single-process engine, which itself is
// invariant across scan concurrency 1/4/32.
func TestFabricMatrix(t *testing.T) {
	refResult, refTables, refSnap := resumeRun(t, nil, telemetry.New())

	// The in-process engine is concurrency-invariant; the fabric's
	// workers then only have to match one canonical output.
	for _, conc := range []int{1, 32} {
		wcfg := matrixWorld()
		reg := telemetry.New()
		s := New(Options{World: &wcfg, Metrics: reg})
		r := s.RunTop10K(Top10KConfig{Concurrency: conc})
		var tables bytes.Buffer
		papertables.PrintCoverage(&tables, "top10k initial snapshot", r.Outages, r.Coverage)
		papertables.PrintTable1(&tables, analysis.BuildTable1(r))
		rows, total := analysis.BuildTable2(r)
		papertables.PrintTable2(&tables, rows, total)
		papertables.PrintTable5(&tables, s.World.Geo, analysis.BuildTable5(s.World, r.Findings))
		if tables.String() != refTables {
			t.Fatalf("in-process study at concurrency %d diverges from default", conc)
		}
		if snap := reg.Snapshot().Deterministic().Text(); snap != refSnap {
			t.Fatalf("in-process snapshot at concurrency %d diverges from default", conc)
		}
	}

	// The journaled reference: what the fabric's coordinator journal
	// must reproduce byte-for-byte.
	refDir := t.TempDir()
	refStore, err := OpenRunStore(refDir, RunStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, tables, snap := resumeRun(t, refStore, telemetry.New()); tables != refTables || snap != refSnap {
		t.Fatal("journaled in-process run diverges from reference")
	}
	refStore.Close()
	refJournal := journalFiles(t, refDir)

	for _, tc := range []struct {
		workers int
		kill    bool
	}{{1, false}, {2, true}, {4, true}} {
		dir := t.TempDir()
		store, err := OpenRunStore(dir, RunStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		result, tables, snap := fabricRun(t, store, telemetry.New(), nil, tc.workers, tc.kill)
		store.Close()
		if len(result.Findings) != len(refResult.Findings) {
			t.Fatalf("workers=%d kill=%v: %d findings, reference %d", tc.workers, tc.kill, len(result.Findings), len(refResult.Findings))
		}
		for i := range result.Findings {
			if result.Findings[i] != refResult.Findings[i] {
				t.Fatalf("workers=%d kill=%v: finding %d differs:\n%+v\n%+v", tc.workers, tc.kill, i, result.Findings[i], refResult.Findings[i])
			}
		}
		if tables != refTables {
			t.Fatalf("workers=%d kill=%v: paper tables diverge:\n--- fabric ---\n%s\n--- reference ---\n%s", tc.workers, tc.kill, tables, refTables)
		}
		if snap != refSnap {
			t.Fatalf("workers=%d kill=%v: deterministic snapshots diverge:\n--- fabric ---\n%s\n--- reference ---\n%s", tc.workers, tc.kill, snap, refSnap)
		}
		if journal := journalFiles(t, dir); !reflect.DeepEqual(journal, refJournal) {
			for name, b := range refJournal {
				if !bytes.Equal(journal[name], b) {
					t.Errorf("workers=%d kill=%v: journal file %s diverges (%d vs %d bytes)", tc.workers, tc.kill, name, len(journal[name]), len(b))
				}
			}
			for name := range journal {
				if _, ok := refJournal[name]; !ok {
					t.Errorf("workers=%d kill=%v: extra journal file %s", tc.workers, tc.kill, name)
				}
			}
			t.Fatalf("workers=%d kill=%v: coordinator journal is not byte-identical to the single-process journal", tc.workers, tc.kill)
		}
	}
}
